package ddc

import (
	"ddc/internal/core"
	"ddc/internal/grid"
)

// Sentinel errors returned (wrapped, test with errors.Is) by cube
// operations. They alias the internal sentinels so errors produced
// anywhere in the implementation match the public names.
var (
	// ErrRange reports a coordinate outside the cube's domain.
	ErrRange = grid.ErrRange
	// ErrDims reports a point whose dimensionality does not match the
	// cube's.
	ErrDims = grid.ErrDims
	// ErrEmptyRange reports a query box with lo > hi in some dimension.
	ErrEmptyRange = grid.ErrEmptyRange
	// ErrBadExtent reports invalid dimension sizes or options.
	ErrBadExtent = grid.ErrBadExtent
	// ErrTooLarge reports growth beyond the supported domain side.
	ErrTooLarge = core.ErrTooLarge
)
