// Command ddccube builds Dynamic Data Cubes from CSV point data and runs
// range-sum queries, point reads and updates against persisted cubes.
//
//	ddccube build -dims 100,366 -csv sales.csv -o sales.cube
//	ddccube query -cube sales.cube -range "27,220:45,251"
//	ddccube add   -cube sales.cube -point "45,341" -delta 250
//	ddccube stats -cube sales.cube
package main

import (
	"os"

	"ddc/internal/cubecli"
)

func main() {
	os.Exit(cubecli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
