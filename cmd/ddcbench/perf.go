package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ddc"
	"ddc/internal/workload"
)

// The -json perf suite measures the concurrent query engine — point vs
// batched ingest and sequential vs parallel-fan-out queries — and writes
// the results as machine-readable JSON, one file per run, so successive
// runs form a perf trajectory (BENCH_*.json at the repository root).

// benchResult is one measured configuration.
type benchResult struct {
	// Name identifies the measurement, e.g. "query/parallel".
	Name string `json:"name"`
	// Params are the knobs that shaped it (shards, batch size, ...).
	Params map[string]int `json:"params,omitempty"`
	// Backend names the prefix-sum backend for the backend/* matrix
	// rows; empty elsewhere.
	Backend string `json:"backend,omitempty"`
	// NsPerOp is nanoseconds per benchmark operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Iters is how many operations the timing loop ran.
	Iters int `json:"iters"`
	// OpCounts aggregates the cube's internal work counters over the
	// whole timed run (cells touched by queries/updates, node visits).
	OpCounts ddc.OpCounts `json:"op_counts"`
	// Telemetry is the metric snapshot for the timed run: operation
	// totals, visit/cell counters, contribution kinds, and latency and
	// fan-out histogram percentiles.
	Telemetry ddc.TelemetrySnapshot `json:"telemetry"`
}

// perfReport is the top-level JSON document.
type perfReport struct {
	Suite      string        `json:"suite"`
	Version    string        `json:"version"` // ddc module build version
	GoMaxProcs int           `json:"go_max_procs"`
	GoVersion  string        `json:"go_version"`
	Results    []benchResult `json:"results"`
	// Batch summarises the batched range-sum engine measurements: the
	// speedups of one planned batch over the equivalent sequential
	// RangeSum loop, with a cold and a warm prefix cache.
	Batch *batchSummary `json:"batch,omitempty"`
	// QueryLevels profiles one worst-case prefix query's descent: the
	// contribution count and value collected at each tree level.
	QueryLevels []ddc.TraceLevel `json:"query_levels,omitempty"`
	// Replay summarises a `-replay` run: record counts and the
	// order-sensitive answer checksums the capture→replay equivalence
	// check compares across backends.
	Replay *replaySummary `json:"replay,omitempty"`
	// Mixed summarises a `-mixed` run: sustained updates/sec and tail
	// latencies for the synchronous vs buffered write fronts, the
	// checkpoint-stall ratio, and the GOMAXPROCS scaling rows.
	Mixed *mixedSummary `json:"mixed,omitempty"`
}

const (
	perfDim0    = 1024
	perfDim1    = 256
	perfShards  = 16
	perfBatch   = 256
	perfPreload = 4096
)

func perfDims() []int { return []int{perfDim0, perfDim1} }

// loadedSharded builds a sharded cube preloaded with a uniform workload.
func loadedSharded(shards int) (*ddc.ShardedCube, error) {
	vals := make([]int64, perfDim0*perfDim1)
	r := workload.NewRNG(101)
	for i := 0; i < perfPreload; i++ {
		vals[r.Intn(len(vals))] += 1 + r.Int63n(50)
	}
	return ddc.BuildSharded(perfDims(), vals, shards, ddc.Options{})
}

// measure runs fn under the standard benchmark harness and pairs the
// timing with the cube's operation counters for the timed run.
func measure(name string, params map[string]int, c ddc.Cube, fn func(b *testing.B)) benchResult {
	tel := ddc.GlobalTelemetry()
	c.ResetOps()
	tel.Reset()
	res := testing.Benchmark(fn)
	return benchResult{
		Name:      name,
		Params:    params,
		NsPerOp:   float64(res.T.Nanoseconds()) / float64(res.N),
		Iters:     res.N,
		OpCounts:  c.Ops(),
		Telemetry: tel.Snapshot(),
	}
}

// queryLevelProfile traces one worst-case prefix query on an unsharded
// cube with the same workload and returns its per-level contribution
// walk.
func queryLevelProfile() ([]ddc.TraceLevel, error) {
	c, err := ddc.NewDynamic(perfDims())
	if err != nil {
		return nil, err
	}
	r := workload.NewRNG(101)
	for i := 0; i < perfPreload; i++ {
		p := []int{r.Intn(perfDim0), r.Intn(perfDim1)}
		if err := c.Add(p, 1+r.Int63n(50)); err != nil {
			return nil, err
		}
	}
	tel := ddc.GlobalTelemetry()
	tel.Reset()
	tel.SetTraceSampling(1)
	defer tel.SetTraceSampling(0)
	c.Prefix([]int{perfDim0 - 2, perfDim1 - 2})
	traces := tel.Traces()
	if len(traces) == 0 {
		return nil, fmt.Errorf("no trace captured for the level profile")
	}
	return traces[0].Levels, nil
}

// runPerfSuite measures the concurrency engine and writes the JSON
// report to path. With smoke set, only the (fast) batched range-sum
// section runs — the CI-friendly subset.
func runPerfSuite(path string, smoke bool) error {
	tel := ddc.GlobalTelemetry()
	tel.Enable()
	defer func() {
		tel.Disable()
		tel.Reset()
	}()

	var report perfReport
	report.Suite = "concurrency"
	report.Version = ddc.Version
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()

	if smoke {
		report.Suite = "batch-smoke"
		batch, summary, err := batchResults(true)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, batch...)
		report.Batch = summary
		// One backend-matrix tier with the blocked-vs-classic constant-
		// factor guard, so a backend regression fails CI.
		backend, err := backendResults(true)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, backend...)
		// The workload-profiler overhead gate and replay throughput.
		wl, err := workloadResults(true)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, wl...)
		return writeReport(path, &report)
	}

	// Ingest: one Add per delta vs one AddBatch for the whole batch.
	r := workload.NewRNG(103)
	batch := make([]ddc.PointDelta, perfBatch)
	for i := range batch {
		batch[i] = ddc.PointDelta{Point: []int{r.Intn(perfDim0), r.Intn(perfDim1)}, Delta: 1}
	}
	for _, mode := range []string{"point", "batch"} {
		c, err := loadedSharded(perfShards)
		if err != nil {
			return err
		}
		mode := mode
		report.Results = append(report.Results, measure(
			"add/"+mode,
			map[string]int{"shards": perfShards, "batch": perfBatch},
			c,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if mode == "batch" {
						if err := c.AddBatch(batch); err != nil {
							b.Fatal(err)
						}
						continue
					}
					for _, pd := range batch {
						if err := c.Add(pd.Point, pd.Delta); err != nil {
							b.Fatal(err)
						}
					}
				}
			}))
	}

	// Queries: the same wide box (spanning every shard) answered by the
	// single-shard sequential shape and by the parallel fan-out.
	lo, hi := []int{0, 16}, []int{perfDim0 - 1, perfDim1 - 16}
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"query/sequential", 1},
		{"query/parallel", perfShards},
	} {
		c, err := loadedSharded(cfg.shards)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, measure(
			cfg.name,
			map[string]int{"shards": cfg.shards},
			c,
			func(b *testing.B) {
				var sink int64
				for i := 0; i < b.N; i++ {
					v, err := c.RangeSum(lo, hi)
					if err != nil {
						b.Fatal(err)
					}
					sink += v
				}
				_ = sink
			}))
	}

	// Batched range-sum engine: batch-of-N vs N sequential RangeSums,
	// cold vs warm prefix cache, at d=2 and d=3.
	batchRes, summary, err := batchResults(false)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, batchRes...)
	report.Batch = summary

	// Backend matrix: every prefix-sum backend at d=2 and d=3, two size
	// tiers each, over sum / add / batch / bulk-load.
	backend, err := backendResults(false)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, backend...)

	// Workload intelligence: profiler overhead (gated) and replay.
	wl, err := workloadResults(false)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, wl...)

	// Durability: WAL append/commit cost and checkpoint latency.
	durable, err := durabilityResults()
	if err != nil {
		return err
	}
	report.Results = append(report.Results, durable...)

	levels, err := queryLevelProfile()
	if err != nil {
		return err
	}
	report.QueryLevels = levels

	return writeReport(path, &report)
}

// writeReport marshals and writes the perf report.
func writeReport(path string, report *perfReport) error {
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	n := len(report.Results)
	if report.Mixed != nil {
		n += len(report.Mixed.Rows)
	}
	fmt.Printf("wrote %d results to %s (GOMAXPROCS=%d)\n", n, path, report.GoMaxProcs)
	return nil
}
