// Command ddcbench regenerates the paper's tables and figures and the
// repository's measured-scaling and ablation experiments.
//
// Usage:
//
//	ddcbench -list           list experiment ids
//	ddcbench <id> [<id>...]  run selected experiments
//	ddcbench all             run everything (the EXPERIMENTS.md inputs)
//	ddcbench -json out.json  run the concurrency perf suite, write JSON
//	ddcbench -mixed out.json [-procs 1,2,4,max] [-smoke]
//	                         run the mixed-workload suite (direct vs
//	                         buffered write fronts, checkpoint stall,
//	                         GOMAXPROCS sweep), write JSON
//	ddcbench -replay cap.bin [-replay-speed X] [-backend B] [-json out.json]
//	                         replay a DDCWKLD2 workload capture
//	ddcbench -version        print build identity and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"ddc"
	"ddc/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvOut := flag.Bool("csv", false, "emit CSV series instead of tables (figure1 only)")
	jsonOut := flag.String("json", "", "run the concurrency perf suite and write JSON results to `file`")
	smoke := flag.Bool("smoke", false, "with -json or -mixed, run only the fast guarded tier (CI smoke)")
	mixed := flag.String("mixed", "", "run the mixed-workload suite (direct vs buffered fronts) and write JSON results to `file`")
	procs := flag.String("procs", "1,2,4,max", "with -mixed, comma-separated GOMAXPROCS sweep values (\"max\" = NumCPU)")
	version := flag.Bool("version", false, "print version, Go toolchain and backend, then exit")
	replay := flag.String("replay", "", "replay the DDCWKLD2 (or DDCWKLD1) workload capture in `file` (see FORMATS.md)")
	replaySpeed := flag.Float64("replay-speed", 0, "replay pacing: 0 = as fast as possible, 1 = recorded rate, 2 = twice as fast")
	backend := flag.String("backend", "", "prefix-sum backend for -replay: classic (default), blocked, blockfenwick")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ddcbench [-list] <experiment-id>... | all\n\nexperiments:\n")
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()
	if *version {
		be := *backend
		if be == "" {
			be = "classic"
		}
		fmt.Printf("ddcbench version=%s go_version=%s backend=%s\n", ddc.Version, runtime.Version(), be)
		return
	}
	if *replay != "" {
		if err := runReplay(*replay, *backend, *replaySpeed, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "ddcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *mixed != "" {
		if err := runMixedSuite(*mixed, *procs, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "ddcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		if err := runPerfSuite(*jsonOut, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "ddcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *csvOut {
		if len(args) != 1 || args[0] != "figure1" {
			fmt.Fprintln(os.Stderr, "ddcbench: -csv is supported for figure1")
			os.Exit(2)
		}
		if err := experiments.Figure1CSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ddcbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 1 && args[0] == "all" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ddcbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range args {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ddcbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ddcbench:", err)
			os.Exit(1)
		}
	}
}
