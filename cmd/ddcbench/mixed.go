package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ddc"
	"ddc/internal/store"
	"ddc/internal/workload"
)

// The mixed-workload suite measures sustained ingest under concurrent
// analytics — the scenario the buffered delta front exists for. Each
// cell runs W writer goroutines (point adds with periodic box updates)
// against R reader goroutines (range sums) for a fixed wall interval,
// in two modes over the same cube geometry:
//
//   - direct:   ddc.Synchronized — every update takes the tree's
//     exclusive lock for an O(log^d n) descent
//   - buffered: ddc.Buffered — updates land in the delta front, the
//     background merger drains them in batches
//
// A separate checkpoint tier runs buffered writers against a durable
// store with and without a concurrent checkpoint streamer, pinning the
// freeze design's no-stall claim (write p99 ratio). The -procs sweep
// repeats one cell across GOMAXPROCS values for scaling rows.

// mixedRow is one measured mixed-workload cell.
type mixedRow struct {
	Name    string `json:"name"`
	Mode    string `json:"mode"` // "direct" or "buffered"
	Backend string `json:"backend,omitempty"`
	Dims    []int  `json:"dims,omitempty"`
	Procs   int    `json:"procs"`
	Writers int    `json:"writers"`
	Readers int    `json:"readers"`
	WallNs  int64  `json:"wall_ns"`

	Updates       uint64  `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Queries       uint64  `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`

	WriteP50Ns int64 `json:"write_p50_ns"`
	WriteP99Ns int64 `json:"write_p99_ns"`
	QueryP50Ns int64 `json:"query_p50_ns,omitempty"`
	QueryP99Ns int64 `json:"query_p99_ns,omitempty"`

	// Checkpoint marks the store-backed rows that streamed checkpoints
	// concurrently with the writers.
	Checkpoint  bool               `json:"checkpoint,omitempty"`
	Checkpoints uint64             `json:"checkpoints,omitempty"`
	Delta       *ddc.BufferedStats `json:"delta,omitempty"`
}

// mixedSummary is the mixed-workload block of the JSON report.
type mixedSummary struct {
	Rows []mixedRow `json:"rows"`
	// WriteSpeedup is buffered/direct sustained updates-per-sec on the
	// guard tier (first backend × dims cell), with the query p99 ratio
	// alongside — the ≥2x-at-equal-p99 acceptance numbers.
	GuardTier     string  `json:"guard_tier"`
	WriteSpeedup  float64 `json:"write_speedup"`
	QueryP99Ratio float64 `json:"query_p99_ratio"`
	// CheckpointStallRatio is write p99 with a concurrent checkpoint
	// streamer over write p99 without one (buffered store, NoSync).
	CheckpointStallRatio float64 `json:"checkpoint_stall_ratio,omitempty"`
}

// mixedFront is the mutation+query surface a mixed cell drives.
type mixedFront interface {
	Add(p []int, delta int64) error
	RangeAdd(lo, hi []int, delta int64) error
	RangeSum(lo, hi []int) (int64, error)
}

// latencies collects per-op latencies with bounded memory: past cap,
// it subsamples 1-in-8 so percentiles stay representative.
type latencies struct {
	v    []int64
	skip int
	n    int
}

func newLatencies() *latencies { return &latencies{v: make([]int64, 0, 1<<18)} }

func (l *latencies) add(d int64) {
	if len(l.v) == cap(l.v) {
		l.skip = 8
	}
	if l.skip > 1 {
		l.n++
		if l.n%l.skip != 0 {
			return
		}
		if len(l.v) == cap(l.v) {
			// Halve the reservoir (keep every other sample) and double
			// the sampling stride.
			half := l.v[:0]
			for i := 0; i < len(l.v); i += 2 {
				half = append(half, l.v[i])
			}
			l.v = half
			l.skip *= 2
		}
	}
	l.v = append(l.v, d)
}

// percentile returns the q-quantile (0..1) of the collected samples.
func percentile(all []int64, q float64) int64 {
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	i := int(q * float64(len(all)-1))
	return all[i]
}

// runMixedCell drives one mode×backend×dims cell for the wall
// interval and reports throughput and tail latencies.
func runMixedCell(name, mode, backend string, dims []int, writers, readers int, dur time.Duration) (mixedRow, error) {
	dyn, err := ddc.NewDynamicWithOptions(dims, ddc.Options{Backend: backend})
	if err != nil {
		return mixedRow{}, err
	}
	var front mixedFront
	var buf *ddc.Buffered
	switch mode {
	case "direct":
		front = ddc.NewSynchronized(dyn)
	case "buffered":
		buf = ddc.NewBuffered(dyn, ddc.BufferedOptions{})
		front = buf
	default:
		return mixedRow{}, fmt.Errorf("mixed: unknown mode %q", mode)
	}

	var updates, queries atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wLats := make([]*latencies, writers)
	qLats := make([]*latencies, readers)

	for w := 0; w < writers; w++ {
		w := w
		wLats[w] = newLatencies()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := workload.NewRNG(uint64(1000 + w))
			p := make([]int, len(dims))
			lo := make([]int, len(dims))
			hi := make([]int, len(dims))
			n := 0
			for !stop.Load() {
				start := time.Now()
				var err error
				if n%64 == 63 {
					for j, ext := range dims {
						lo[j] = r.Intn(ext)
						hi[j] = lo[j] + r.Intn(ext-lo[j])
					}
					err = front.RangeAdd(lo, hi, 1)
				} else {
					for j, ext := range dims {
						p[j] = r.Intn(ext)
					}
					err = front.Add(p, 1)
				}
				wLats[w].add(time.Since(start).Nanoseconds())
				if err != nil {
					stop.Store(true)
					return
				}
				updates.Add(1)
				n++
			}
		}()
	}
	for q := 0; q < readers; q++ {
		q := q
		qLats[q] = newLatencies()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := workload.NewRNG(uint64(2000 + q))
			lo := make([]int, len(dims))
			hi := make([]int, len(dims))
			var sink int64
			for !stop.Load() {
				for j, ext := range dims {
					lo[j] = r.Intn(ext / 2)
					hi[j] = lo[j] + ext/4
				}
				start := time.Now()
				v, err := front.RangeSum(lo, hi)
				qLats[q].add(time.Since(start).Nanoseconds())
				if err != nil {
					stop.Store(true)
					return
				}
				sink += v
				queries.Add(1)
			}
			_ = sink
		}()
	}

	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(begin)

	row := mixedRow{
		Name: name, Mode: mode, Backend: dyn.Backend(), Dims: dims,
		Procs: runtime.GOMAXPROCS(0), Writers: writers, Readers: readers,
		WallNs:  wall.Nanoseconds(),
		Updates: updates.Load(), Queries: queries.Load(),
	}
	row.UpdatesPerSec = float64(row.Updates) / wall.Seconds()
	row.QueriesPerSec = float64(row.Queries) / wall.Seconds()
	var wAll, qAll []int64
	for _, l := range wLats {
		wAll = append(wAll, l.v...)
	}
	for _, l := range qLats {
		qAll = append(qAll, l.v...)
	}
	row.WriteP50Ns = percentile(wAll, 0.50)
	row.WriteP99Ns = percentile(wAll, 0.99)
	row.QueryP50Ns = percentile(qAll, 0.50)
	row.QueryP99Ns = percentile(qAll, 0.99)
	if buf != nil {
		st := buf.Stats()
		row.Delta = &st
		if err := buf.Close(); err != nil {
			return row, err
		}
	}
	return row, nil
}

// runCheckpointCell drives buffered writers against a durable store
// (NoSync — the fsync cost is not what this tier measures) with or
// without a concurrent checkpoint streamer, reporting write tails.
func runCheckpointCell(dims []int, writers int, dur time.Duration, checkpoint bool) (mixedRow, error) {
	dir, err := os.MkdirTemp("", "ddcmixed")
	if err != nil {
		return mixedRow{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{
		Dims:     dims,
		NoSync:   true,
		Buffered: true,
	})
	if err != nil {
		return mixedRow{}, err
	}
	defer st.Close()

	var updates atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	lats := make([]*latencies, writers)
	for w := 0; w < writers; w++ {
		w := w
		lats[w] = newLatencies()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := workload.NewRNG(uint64(3000 + w))
			p := make([]int, len(dims))
			n := 0
			for !stop.Load() {
				for j, ext := range dims {
					p[j] = r.Intn(ext)
				}
				start := time.Now()
				err := st.Add(p, 1)
				if err == nil && n%32 == 31 {
					err = st.Flush()
				}
				lats[w].add(time.Since(start).Nanoseconds())
				if err != nil {
					stop.Store(true)
					return
				}
				updates.Add(1)
				n++
			}
		}()
	}
	var checkpoints atomic.Uint64
	if checkpoint {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := st.Checkpoint(); err != nil {
					stop.Store(true)
					return
				}
				checkpoints.Add(1)
			}
		}()
	}

	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(begin)
	if err := st.Healthy(); err != nil {
		return mixedRow{}, fmt.Errorf("mixed checkpoint cell: store unhealthy: %w", err)
	}

	name := "mixed/store"
	if checkpoint {
		name = "mixed/store+checkpoint"
	}
	row := mixedRow{
		Name: name, Mode: "buffered", Dims: dims,
		Procs: runtime.GOMAXPROCS(0), Writers: writers,
		WallNs:  wall.Nanoseconds(),
		Updates: updates.Load(), Checkpoint: checkpoint,
		Checkpoints: checkpoints.Load(),
	}
	row.UpdatesPerSec = float64(row.Updates) / wall.Seconds()
	var all []int64
	for _, l := range lats {
		all = append(all, l.v...)
	}
	row.WriteP50Ns = percentile(all, 0.50)
	row.WriteP99Ns = percentile(all, 0.99)
	bst := st.Buffered().Stats()
	row.Delta = &bst
	return row, nil
}

// parseProcs expands a -procs list ("1,2,4,max") into distinct
// ascending GOMAXPROCS values.
func parseProcs(spec string) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n := 0
		if f == "max" {
			n = runtime.NumCPU()
		} else {
			v, err := strconv.Atoi(f)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad -procs entry %q", f)
			}
			n = v
		}
		if n > runtime.NumCPU() {
			n = runtime.NumCPU()
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("-procs list is empty")
	}
	return out, nil
}

// runMixedSuite measures the mixed-workload matrix and writes the JSON
// report. Smoke shrinks it to one guarded tier; the guard (buffered
// sustained writes ≥2x direct at no worse than 1.25x query p99) makes
// a front regression fail CI.
func runMixedSuite(path, procsSpec string, smoke bool) error {
	procs, err := parseProcs(procsSpec)
	if err != nil {
		return err
	}
	report := perfReport{
		Suite:      "mixed-workload",
		Version:    ddc.Version,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	sum := &mixedSummary{}

	cell := 600 * time.Millisecond
	ckptCell := 800 * time.Millisecond
	backends := ddc.Backends()
	tiers := [][]int{{1024, 256}, {64, 64, 64}}
	if smoke {
		cell = 250 * time.Millisecond
		ckptCell = 400 * time.Millisecond
		backends = backends[:1]
		tiers = tiers[:1]
	}
	writers, readers := 4, 2

	// Direct vs buffered over the backend × dims matrix.
	for _, be := range backends {
		for _, dims := range tiers {
			var rows [2]mixedRow
			for i, mode := range []string{"direct", "buffered"} {
				name := fmt.Sprintf("mixed/%s/%s/%dd", mode, be, len(dims))
				row, err := runMixedCell(name, mode, be, dims, writers, readers, cell)
				if err != nil {
					return err
				}
				rows[i] = row
				sum.Rows = append(sum.Rows, row)
			}
			if sum.GuardTier == "" {
				sum.GuardTier = fmt.Sprintf("%s/%dd", rows[0].Backend, len(dims))
				sum.WriteSpeedup = rows[1].UpdatesPerSec / rows[0].UpdatesPerSec
				if rows[0].QueryP99Ns > 0 {
					sum.QueryP99Ratio = float64(rows[1].QueryP99Ns) / float64(rows[0].QueryP99Ns)
				}
			}
		}
	}

	// Checkpoint-stall tier: buffered store writers with and without a
	// concurrent checkpoint streamer.
	base, err := runCheckpointCell(tiers[0], writers, ckptCell, false)
	if err != nil {
		return err
	}
	sum.Rows = append(sum.Rows, base)
	ck, err := runCheckpointCell(tiers[0], writers, ckptCell, true)
	if err != nil {
		return err
	}
	sum.Rows = append(sum.Rows, ck)
	if base.WriteP99Ns > 0 {
		sum.CheckpointStallRatio = float64(ck.WriteP99Ns) / float64(base.WriteP99Ns)
	}

	// GOMAXPROCS sweep: scaling rows for write and query throughput.
	if !smoke {
		prev := runtime.GOMAXPROCS(0)
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			for _, mode := range []string{"direct", "buffered"} {
				name := fmt.Sprintf("mixed/procs/%s/p%d", mode, p)
				row, err := runMixedCell(name, mode, "", tiers[0], writers, readers, cell/2)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return err
				}
				sum.Rows = append(sum.Rows, row)
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	report.Mixed = sum
	if err := writeReport(path, &report); err != nil {
		return err
	}

	if smoke {
		// The CI guard: a buffered front that cannot beat the synchronous
		// path by 2x on sustained writes — or that costs more than 25% of
		// query p99 — is a regression.
		if sum.WriteSpeedup < 2.0 {
			return fmt.Errorf("mixed smoke guard: buffered/direct write speedup %.2fx < 2x (tier %s)",
				sum.WriteSpeedup, sum.GuardTier)
		}
		if sum.QueryP99Ratio > 1.25 {
			return fmt.Errorf("mixed smoke guard: buffered query p99 is %.2fx direct (limit 1.25x, tier %s)",
				sum.QueryP99Ratio, sum.GuardTier)
		}
		if sum.CheckpointStallRatio > 1.5 {
			return fmt.Errorf("mixed smoke guard: concurrent checkpoint inflates write p99 by %.2fx (limit 1.5x)",
				sum.CheckpointStallRatio)
		}
		fmt.Printf("mixed smoke guard: %.2fx writes, %.2fx query p99, %.2fx checkpoint stall — ok\n",
			sum.WriteSpeedup, sum.QueryP99Ratio, sum.CheckpointStallRatio)
	}
	return nil
}
