package main

import (
	"fmt"
	"testing"

	"ddc"
	"ddc/internal/workload"
)

// The backend section measures the pluggable 1-d prefix-sum backends
// (the B_c slot of the paper's tree) head to head through the full cube
// API, so the numbers include the overlay descent each backend sits
// under. Four operations per (backend, shape) cell:
//
//	backend/sum       one single-point prefix sum per op (worst-case
//	                  deep point, so every level's row sums run)
//	backend/add       one point update per op over a cycling point set
//	backend/batch     one warm RangeSumBatchInto over a sliding-window
//	                  fleet per op
//	backend/bulkload  one BuildDynamic from a dense slice per op
//
// Shapes cover d=2 and d=3 at two side lengths each; the smoke subset
// keeps a single d=2 tier and guards the blocked backend's constant
// factor against the classic reference.

// backendTier is one domain shape in the matrix.
type backendTier struct {
	d, side int
}

func (t backendTier) dims() []int {
	dims := make([]int, t.d)
	for i := range dims {
		dims[i] = t.side
	}
	return dims
}

func backendTiers(smoke bool) []backendTier {
	if smoke {
		return []backendTier{{d: 2, side: 256}}
	}
	return []backendTier{
		{d: 2, side: 256},
		{d: 2, side: 1024},
		{d: 3, side: 32},
		{d: 3, side: 64},
	}
}

// backendGuardFactor is the smoke-mode regression budget: the blocked
// backend's branch-free cache-line row sums are reliably faster than
// the classic pointer-walking B_c tree on this workload, so blocked
// exceeding classic by this factor on sum or add means a real constant-
// factor regression, not scheduler noise.
const backendGuardFactor = 1.4

// backendPreload fills a dense value slice with the standard uniform
// workload, scaled to the domain size so small tiers stay non-trivial.
func backendPreload(dims []int) []int64 {
	n := 1
	for _, d := range dims {
		n *= d
	}
	load := perfPreload
	if load > n/4 {
		load = n / 4
	}
	vals := make([]int64, n)
	r := workload.NewRNG(101)
	for i := 0; i < load; i++ {
		vals[r.Intn(n)] += 1 + r.Int63n(50)
	}
	return vals
}

// backendWindows builds the sliding-window fleet for the batch op: nq
// quarter-width windows sliding along dimension 0 with half-width
// stride, trimmed an eighth off every other dimension.
func backendWindows(dims []int, nq int) []ddc.RangeQuery {
	width := dims[0] / 4
	if width < 1 {
		width = 1
	}
	stride := width / 2
	if stride < 1 {
		stride = 1
	}
	otherLo := make([]int, len(dims)-1)
	otherHi := make([]int, len(dims)-1)
	for i := 1; i < len(dims); i++ {
		otherLo[i-1] = dims[i] / 8
		otherHi[i-1] = dims[i] - dims[i]/8 - 1
	}
	return toRangeQueries(workload.Windows(dims, nq, 0, width, stride, otherLo, otherHi))
}

// backendResults measures the matrix and returns one benchResult per
// (backend, shape, op) cell. In smoke mode it also enforces the
// blocked-vs-classic guard and returns an error on regression.
func backendResults(smoke bool) ([]benchResult, error) {
	var results []benchResult
	// nsPerOp[op][backend] for the guard, recorded for the last (only,
	// in smoke mode) tier measured.
	guard := map[string]map[string]float64{"backend/sum": {}, "backend/add": {}}
	for _, tier := range backendTiers(smoke) {
		dims := tier.dims()
		vals := backendPreload(dims)
		params := map[string]int{"d": tier.d, "side": tier.side}

		// The deep query point has every coordinate one short of the far
		// edge, so each level's row prefix covers a near-full block scan —
		// the layout-sensitive worst case.
		deep := make([]int, tier.d)
		for i := range deep {
			deep[i] = tier.side - 2
		}
		// The update points cycle through a fixed random set large enough
		// to defeat a single hot cache line.
		r := workload.NewRNG(107)
		pts := make([][]int, 64)
		for i := range pts {
			p := make([]int, tier.d)
			for j := range p {
				p[j] = r.Intn(tier.side)
			}
			pts[i] = p
		}
		queries := backendWindows(dims, 64)
		sums := make([]int64, len(queries))

		for _, be := range ddc.Backends() {
			be := be
			opt := ddc.Options{Backend: be}

			c, err := ddc.BuildDynamic(dims, vals, opt)
			if err != nil {
				return nil, fmt.Errorf("backend %s: %v", be, err)
			}

			res := measure("backend/sum", params, c, func(b *testing.B) {
				var sink int64
				for i := 0; i < b.N; i++ {
					sink += c.Prefix(deep)
				}
				_ = sink
			})
			res.Backend = be
			results = append(results, res)
			guard["backend/sum"][be] = res.NsPerOp

			res = measure("backend/add", params, c, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := c.Add(pts[i&63], 1); err != nil {
						b.Fatal(err)
					}
				}
			})
			res.Backend = be
			results = append(results, res)
			guard["backend/add"][be] = res.NsPerOp

			if smoke {
				continue
			}

			res = measure("backend/batch", params, c, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := c.RangeSumBatchInto(queries, sums); err != nil {
						b.Fatal(err)
					}
				}
			})
			res.Backend = be
			results = append(results, res)

			res = measure("backend/bulkload", params, c, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ddc.BuildDynamic(dims, vals, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			res.Backend = be
			results = append(results, res)
		}
	}
	if smoke {
		for _, op := range []string{"backend/sum", "backend/add"} {
			classic, blocked := guard[op]["classic"], guard[op]["blocked"]
			if classic == 0 || blocked == 0 {
				return nil, fmt.Errorf("backend guard: missing %s measurements", op)
			}
			if blocked > classic*backendGuardFactor {
				return nil, fmt.Errorf(
					"backend guard: blocked %s %.1fns/op exceeds classic %.1fns/op by more than %.1fx",
					op, blocked, classic, backendGuardFactor)
			}
		}
	}
	return results, nil
}
