package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ddc"
	"ddc/internal/workload"
)

// Replay mode executes a DDCWKLD2 (or legacy DDCWKLD1) workload
// capture (see FORMATS.md)
// against a freshly built cube: updates rebuild the captured state in
// order, queries re-run with their answers folded into order-sensitive
// checksums. Replaying the same capture under every -backend must
// produce identical checksums — the capture→replay equivalence check
// scripts/ci.sh runs — and a live server's answers must match the
// replayed ones bit-exactly.

// replaySummary is the machine-readable outcome of one replay run.
type replaySummary struct {
	File          string `json:"file"`
	Backend       string `json:"backend"`
	Dims          []int  `json:"dims"`
	SampleQueries int    `json:"sample_queries"`
	// Speed is the pacing factor: 0 replays as fast as possible, 1 at
	// the recorded rate, 2 twice as fast.
	Speed   float64 `json:"speed"`
	Records int     `json:"records"`
	Updates int     `json:"updates"`
	Queries int     `json:"queries"`
	Torn    bool    `json:"torn"`
	WallNs  int64   `json:"wall_ns"`
	// QueryValues counts individual query answers (a batch contributes
	// one per box); SumsSum and SumsXor fold them in execution order —
	// the equivalence fingerprint.
	QueryValues int    `json:"query_values"`
	SumsSum     int64  `json:"sums_sum"`
	SumsXor     uint64 `json:"sums_xor"`
}

func (s *replaySummary) mix(v int64) {
	s.QueryValues++
	s.SumsSum += v
	s.SumsXor ^= uint64(v)
}

// execReplay loads a capture and executes it against a new cube with
// the given backend, pacing records by their recorded timestamps when
// speed > 0.
func execReplay(path, backend string, speed float64) (*replaySummary, *ddc.DynamicCube, error) {
	var recs []workload.CaptureRecord
	info, err := workload.ReadCaptureFile(path, func(rec workload.CaptureRecord) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if backend == "" {
		backend = "classic"
	}
	c, err := ddc.NewDynamicWithOptions(info.Dims, ddc.Options{Backend: backend})
	if err != nil {
		return nil, nil, err
	}
	sum := &replaySummary{
		File: path, Backend: c.Backend(), Dims: info.Dims,
		SampleQueries: info.SampleN, Speed: speed,
		Records: info.Records, Updates: info.Updates, Queries: info.Queries,
		Torn: info.Torn,
	}
	start := time.Now()
	for _, rec := range recs {
		if speed > 0 {
			due := start.Add(time.Duration(float64(rec.At-recs[0].At) / speed))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		switch rec.Op {
		case workload.OpAdd:
			if err := c.Add(rec.Point, rec.Value); err != nil {
				return nil, nil, fmt.Errorf("replay add %v: %w", rec.Point, err)
			}
		case workload.OpSet:
			if err := c.Set(rec.Point, rec.Value); err != nil {
				return nil, nil, fmt.Errorf("replay set %v: %w", rec.Point, err)
			}
		case workload.OpRangeAdd:
			if err := c.RangeAdd(rec.Lo, rec.Hi, rec.Value); err != nil {
				return nil, nil, fmt.Errorf("replay rangeadd %v..%v: %w", rec.Lo, rec.Hi, err)
			}
		case workload.OpPrefix:
			sum.mix(c.Prefix(rec.Point))
		case workload.OpRangeSum:
			v, err := c.RangeSum(rec.Lo, rec.Hi)
			if err != nil {
				return nil, nil, fmt.Errorf("replay rangesum %v..%v: %w", rec.Lo, rec.Hi, err)
			}
			sum.mix(v)
		case workload.OpBatch:
			queries := make([]ddc.RangeQuery, len(rec.Batch))
			for i, q := range rec.Batch {
				queries[i] = ddc.RangeQuery{Lo: q.Lo, Hi: q.Hi}
			}
			vals, err := c.RangeSumBatch(queries)
			if err != nil {
				return nil, nil, fmt.Errorf("replay batch of %d: %w", len(queries), err)
			}
			for _, v := range vals {
				sum.mix(v)
			}
		default:
			return nil, nil, fmt.Errorf("replay: unknown op %d", rec.Op)
		}
	}
	sum.WallNs = time.Since(start).Nanoseconds()
	return sum, c, nil
}

// runReplay is the `ddcbench -replay` entry point: execute the capture
// and emit a standard ddcbench JSON report (to the -json file, or
// stdout) whose replay block carries the equivalence checksums.
func runReplay(path, backend string, speed float64, jsonPath string) error {
	tel := ddc.GlobalTelemetry()
	tel.Reset()
	tel.Enable()
	defer func() {
		tel.Disable()
		tel.Reset()
	}()
	sum, c, err := execReplay(path, backend, speed)
	if err != nil {
		return err
	}
	report := perfReport{
		Suite:      "replay",
		Version:    ddc.Version,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Replay:     sum,
	}
	nsPerOp := float64(0)
	if sum.Records > 0 {
		nsPerOp = float64(sum.WallNs) / float64(sum.Records)
	}
	report.Results = append(report.Results, benchResult{
		Name:      "replay/exec",
		Backend:   sum.Backend,
		NsPerOp:   nsPerOp,
		Iters:     sum.Records,
		OpCounts:  c.Ops(),
		Telemetry: tel.Snapshot(),
	})
	if jsonPath != "" {
		return writeReport(jsonPath, &report)
	}
	out, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = os.Stdout.Write(out)
	return err
}
