package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ddc"
	"ddc/internal/workload"
)

// The workload section measures the workload-intelligence layer itself:
// what the live query-shape profiler costs on the telemetry-enabled
// read path, and how fast a capture replays. The profiler rows are a
// gate, not just a report — the collectors are a handful of atomic adds
// per operation (~100ns), so exceeding the factor below against the
// profiler-off baseline on a d=3 range sum (tens of microseconds of
// tree work) is a real regression, not constant-factor noise.
const profilerGuardFactor = 1.02

// profilerChunk is how many operations one timed slice runs. A pair of
// adjacent chunks — one per mode, order alternating — shares whatever
// CPU frequency state the machine is in (~2ms per chunk, frequency
// steps last far longer), so each pair's on/off duration ratio cancels
// the drift that would dominate the ~0.5% signal if modes were timed
// in separate blocks. The gate compares the *median* pair ratio, which
// also discards pairs an OS preemption inflated.
const profilerChunk = 100

// profilerPairs is how many off/on chunk pairs feed the median ratio
// (2 × pairs × chunk operations overall).
const profilerPairs = 150

// workloadReplayOps sizes the synthetic capture behind the replay row.
const workloadReplayOps = 2000

// workloadResults measures profiler-off vs profiler-on range sums
// (enforcing the overhead gate) and full-speed capture replay.
func workloadResults(smoke bool) ([]benchResult, error) {
	off, on, err := profilerRows()
	if err != nil {
		return nil, err
	}
	results := []benchResult{off, on}
	replayRow, err := replayResult()
	if err != nil {
		return nil, err
	}
	results = append(results, *replayRow)
	return results, nil
}

// profilerRows times a fixed d=3 range sum with the profiler off and
// on in finely interleaved chunk pairs, and gates on the median
// per-pair on/off ratio.
func profilerRows() (off, on benchResult, err error) {
	dims := []int{96, 96, 96}
	c, err := ddc.BuildDynamic(dims, backendPreload(dims), ddc.Options{})
	if err != nil {
		return off, on, err
	}
	lo, hi := []int{5, 6, 7}, []int{90, 89, 88}
	tel := ddc.GlobalTelemetry()
	wl := tel.Workload()
	c.ResetOps()
	tel.Reset()
	timeChunk := func(mode bool) (time.Duration, error) {
		wl.SetEnabled(mode)
		var sink int64
		start := time.Now()
		for i := 0; i < profilerChunk; i++ {
			v, err := c.RangeSum(lo, hi)
			if err != nil {
				return 0, err
			}
			sink += v
		}
		_ = sink
		return time.Since(start), nil
	}
	chunks := map[bool][]time.Duration{}
	ratios := make([]float64, 0, profilerPairs)
	for pair := 0; pair < profilerPairs; pair++ {
		modes := []bool{false, true}
		if pair%2 == 1 {
			modes = []bool{true, false}
		}
		dur := map[bool]time.Duration{}
		for _, mode := range modes {
			d, rerr := timeChunk(mode)
			if rerr != nil {
				return off, on, rerr
			}
			dur[mode] = d
			chunks[mode] = append(chunks[mode], d)
		}
		ratios = append(ratios, float64(dur[true])/float64(dur[false]))
	}
	wl.SetEnabled(true)
	medianDur := func(ds []time.Duration) time.Duration {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[len(sorted)/2]
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	row := func(name string, mode bool) benchResult {
		return benchResult{
			Name:      name,
			Params:    map[string]int{"profiler": b2i(mode), "d": len(dims)},
			NsPerOp:   float64(medianDur(chunks[mode]).Nanoseconds()) / profilerChunk,
			Iters:     profilerPairs * profilerChunk,
			OpCounts:  c.Ops(),
			Telemetry: ddc.GlobalTelemetry().Snapshot(),
		}
	}
	off = row("workload/profiler-off", false)
	on = row("workload/profiler-on", true)
	if overhead > profilerGuardFactor {
		return off, on, fmt.Errorf(
			"workload profiler overhead regression: median paired on/off ratio %.4f (budget %.0f%%; medians %.0f vs %.0f ns/op)",
			overhead, (profilerGuardFactor-1)*100, on.NsPerOp, off.NsPerOp)
	}
	return off, on, nil
}

// replayResult synthesizes a capture (half updates, half range sums)
// and replays it at full speed through the replay engine.
func replayResult() (*benchResult, error) {
	dir, err := os.MkdirTemp("", "ddcwkld")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "capture.bin")
	dims := []int{256, 256}
	cp, err := workload.NewCapture(workload.CaptureOptions{
		Path: path, Dims: dims, SampleQueries: 1,
	})
	if err != nil {
		return nil, err
	}
	r := workload.NewRNG(107)
	for _, u := range workload.Uniform(r, dims, workloadReplayOps/2, 50) {
		cp.Add(u.Point, u.Value)
	}
	for _, q := range workload.Ranges(r, dims, workloadReplayOps/2, 0.25) {
		cp.RangeSum(q.Lo, q.Hi)
	}
	if err := cp.Close(); err != nil {
		return nil, err
	}
	sum, c, err := execReplay(path, "", 0)
	if err != nil {
		return nil, err
	}
	nsPerOp := float64(sum.WallNs) / float64(sum.Records)
	return &benchResult{
		Name:    "workload/replay",
		Backend: sum.Backend,
		Params: map[string]int{
			"records": sum.Records, "updates": sum.Updates, "queries": sum.Queries,
		},
		NsPerOp:   nsPerOp,
		Iters:     sum.Records,
		OpCounts:  c.Ops(),
		Telemetry: ddc.GlobalTelemetry().Snapshot(),
	}, nil
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
