package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"ddc"
	"ddc/internal/store"
	"ddc/internal/workload"
)

// The durability section of the -json perf suite prices the write-ahead
// log and the checkpoint pipeline: framed+checksummed appends with no
// I/O (pure encoding cost), appends committed through fsync (the per-
// request durability tax the server pays), and full checkpoint/rotate
// cycles on a loaded store.

const durabilityBatch = 64

// measureRaw is measure without a sharded cube: timing plus the global
// telemetry snapshot for the run.
func measureRaw(name string, params map[string]int, fn func(b *testing.B)) benchResult {
	tel := ddc.GlobalTelemetry()
	tel.Reset()
	res := testing.Benchmark(fn)
	return benchResult{
		Name:      name,
		Params:    params,
		NsPerOp:   float64(res.T.Nanoseconds()) / float64(res.N),
		Iters:     res.N,
		Telemetry: tel.Snapshot(),
	}
}

// durabilityPoints returns a deterministic mutation stream.
func durabilityPoints(n int) [][]int {
	r := workload.NewRNG(107)
	pts := make([][]int, n)
	for i := range pts {
		pts[i] = []int{r.Intn(perfDim0), r.Intn(perfDim1)}
	}
	return pts
}

// durabilityResults measures wal/append, wal/commit and
// store/checkpoint. Each benchmark op is one batch of durabilityBatch
// mutations so the numbers are comparable to the ingest section.
func durabilityResults() ([]benchResult, error) {
	pts := durabilityPoints(durabilityBatch)
	var out []benchResult

	// wal/append: encoding + CRC only, records discarded.
	cube, err := ddc.NewDynamic(perfDims())
	if err != nil {
		return nil, err
	}
	wal, err := ddc.NewWAL(cube, io.Discard)
	if err != nil {
		return nil, err
	}
	out = append(out, measureRaw("wal/append",
		map[string]int{"batch": durabilityBatch},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pts {
					if err := wal.Add(p, 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))

	// wal/commit: the same batch appended to a real file and made
	// durable with Flush (bufio flush + fsync) — one commit point per op.
	dir, err := os.MkdirTemp("", "ddcbench-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	f, err := os.Create(filepath.Join(dir, "bench.wal"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cube2, err := ddc.NewDynamic(perfDims())
	if err != nil {
		return nil, err
	}
	fwal, err := ddc.NewWAL(cube2, f)
	if err != nil {
		return nil, err
	}
	out = append(out, measureRaw("wal/commit",
		map[string]int{"batch": durabilityBatch},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pts {
					if err := fwal.Add(p, 1); err != nil {
						b.Fatal(err)
					}
				}
				if err := fwal.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// store/checkpoint: snapshot + fsync + rename + segment rotation on
	// a store preloaded with the perf workload.
	sdir, err := os.MkdirTemp("", "ddcbench-store")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sdir)
	st, err := store.Open(sdir, store.Options{
		Dims:                  perfDims(),
		DisableAutoCheckpoint: true,
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	r := workload.NewRNG(109)
	for i := 0; i < perfPreload; i++ {
		p := []int{r.Intn(perfDim0), r.Intn(perfDim1)}
		if err := st.Add(p, 1+r.Int63n(50)); err != nil {
			return nil, err
		}
	}
	if err := st.Flush(); err != nil {
		return nil, err
	}
	out = append(out, measureRaw("store/checkpoint",
		map[string]int{"preload": perfPreload},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := st.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	return out, nil
}
