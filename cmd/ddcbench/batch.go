package main

import (
	"fmt"
	"testing"

	"ddc"
	"ddc/internal/workload"
)

// The batch section measures the batched range-sum engine against the
// equivalent sequential RangeSum loop on the dashboard shape it was
// built for: a fleet of overlapping sliding windows whose corners meet
// on a small aligned lattice. Three modes per dimensionality:
//
//	batch/sequential  one RangeSum call per window (the baseline)
//	batch/cold        one RangeSumBatch per iteration, prefix cache
//	                  invalidated first — measures planning + corner
//	                  dedup alone
//	batch/warm        one RangeSumBatch per iteration on a warm cache —
//	                  adds the versioned-cache win on a quiescent cube

// batchSummary condenses the section for trend tracking: speedup is
// sequential ns/op divided by batched ns/op.
type batchSummary struct {
	// QueriesD2 / QueriesD3 are the batch sizes measured.
	QueriesD2 int `json:"queries_d2"`
	QueriesD3 int `json:"queries_d3"`
	// ColdSpeedupD2 is sequential/cold at d=2 — the dedup win.
	ColdSpeedupD2 float64 `json:"cold_speedup_d2"`
	// WarmSpeedupD2 is sequential/warm at d=2 — dedup plus cache.
	WarmSpeedupD2 float64 `json:"warm_speedup_d2"`
	ColdSpeedupD3 float64 `json:"cold_speedup_d3"`
	WarmSpeedupD3 float64 `json:"warm_speedup_d3"`
}

// batchCase is one dimensionality's workload.
type batchCase struct {
	label   string
	dims    []int
	queries []ddc.RangeQuery
}

// batchCases builds the d=2 and d=3 window fleets. The windows slide
// along dimension 0 with stride = width/2 over stride-aligned start
// positions, so consecutive windows share corner planes and the batch's
// corner terms collapse onto a small lattice.
func batchCases(smoke bool) []batchCase {
	// The 64-window fleet cycles over 15 stride-aligned start positions,
	// so its ~240 corner terms collapse onto a ~32-corner lattice — the
	// same shape at either suite size (smoke keeps it, it is already
	// fast).
	nq := 64
	_ = smoke
	cases := []batchCase{}
	{
		dims := []int{1024, 256}
		qs := workload.Windows(dims, nq, 0, 128, 64, []int{16}, []int{239})
		cases = append(cases, batchCase{label: "d2", dims: dims, queries: toRangeQueries(qs)})
	}
	{
		dims := []int{128, 64, 64}
		qs := workload.Windows(dims, nq, 0, 32, 16, []int{8, 8}, []int{55, 55})
		cases = append(cases, batchCase{label: "d3", dims: dims, queries: toRangeQueries(qs)})
	}
	return cases
}

func toRangeQueries(qs []workload.Query) []ddc.RangeQuery {
	out := make([]ddc.RangeQuery, len(qs))
	for i, q := range qs {
		out[i] = ddc.RangeQuery{Lo: []int(q.Lo), Hi: []int(q.Hi)}
	}
	return out
}

// loadedDynamic builds an unsharded cube preloaded with perfPreload
// uniform deltas over dims.
func loadedDynamic(dims []int) (*ddc.DynamicCube, error) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	vals := make([]int64, n)
	r := workload.NewRNG(101)
	for i := 0; i < perfPreload; i++ {
		vals[r.Intn(n)] += 1 + r.Int63n(50)
	}
	return ddc.BuildDynamic(dims, vals, ddc.Options{})
}

// batchResults measures the three modes for each case and returns the
// results plus the condensed summary.
func batchResults(smoke bool) ([]benchResult, *batchSummary, error) {
	var results []benchResult
	summary := &batchSummary{}
	for _, bc := range batchCases(smoke) {
		c, err := loadedDynamic(bc.dims)
		if err != nil {
			return nil, nil, err
		}
		queries := bc.queries
		params := map[string]int{"queries": len(queries), "d": len(bc.dims)}

		// Sanity: batched and sequential answers must agree before any
		// timing is trusted.
		want := make([]int64, len(queries))
		for i, q := range queries {
			v, err := c.RangeSum(q.Lo, q.Hi)
			if err != nil {
				return nil, nil, err
			}
			want[i] = v
		}
		got, err := c.RangeSumBatch(queries)
		if err != nil {
			return nil, nil, err
		}
		for i := range want {
			if got[i] != want[i] {
				return nil, nil, fmt.Errorf("batch %s: query %d: batched %d != sequential %d", bc.label, i, got[i], want[i])
			}
		}

		seq := measure("batch/sequential/"+bc.label, params, c, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					v, err := c.RangeSum(q.Lo, q.Hi)
					if err != nil {
						b.Fatal(err)
					}
					sink += v
				}
			}
			_ = sink
		})
		cold := measure("batch/cold/"+bc.label, params, c, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				c.InvalidatePrefixCache()
				sums, err := c.RangeSumBatch(queries)
				if err != nil {
					b.Fatal(err)
				}
				sink += sums[0]
			}
			_ = sink
		})
		c.RangeSumBatch(queries) // warm the cache outside the timer
		warm := measure("batch/warm/"+bc.label, params, c, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sums, err := c.RangeSumBatch(queries)
				if err != nil {
					b.Fatal(err)
				}
				sink += sums[0]
			}
			_ = sink
		})
		results = append(results, seq, cold, warm)

		coldSpeedup := seq.NsPerOp / cold.NsPerOp
		warmSpeedup := seq.NsPerOp / warm.NsPerOp
		switch bc.label {
		case "d2":
			summary.QueriesD2 = len(queries)
			summary.ColdSpeedupD2 = coldSpeedup
			summary.WarmSpeedupD2 = warmSpeedup
		case "d3":
			summary.QueriesD3 = len(queries)
			summary.ColdSpeedupD3 = coldSpeedup
			summary.WarmSpeedupD3 = warmSpeedup
		}
	}
	return results, summary, nil
}
