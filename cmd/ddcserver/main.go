// Command ddcserver serves a Dynamic Data Cube over HTTP/JSON: live
// point updates and range-sum analytics against the same cube — the
// interactive, continuously-updated data cube Section 1 of the paper
// argues for.
//
//	ddcserver -dims 100,366 -addr :8080 [-cube snap] [-wal log] [-autogrow]
//	          [-pprof] [-trace-sample N] [-slow-query 50ms]
//
// Endpoints: POST /v1/add, POST /v1/set, POST /v1/batch, GET /v1/get,
// GET /v1/sum, GET /v1/scan, GET /v1/explain, GET /v1/stats,
// GET /v1/trace, GET /v1/snapshot, GET /metrics (Prometheus text), and
// GET /debug/pprof/ with -pprof. See internal/cubeserver.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"ddc"
	"ddc/internal/cubecli"
	"ddc/internal/cubeserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dimsFlag := flag.String("dims", "", "dimension sizes for a fresh cube, e.g. 100,366")
	cubePath := flag.String("cube", "", "snapshot to load instead of a fresh cube")
	walPath := flag.String("wal", "", "append mutations to this write-ahead log (replayed at startup if it exists)")
	autogrow := flag.Bool("autogrow", false, "grow the cube for out-of-range updates")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	traceSample := flag.Int("trace-sample", 0, "record a structured trace for 1 in N queries (0 = off)")
	slowQuery := flag.Duration("slow-query", 0, "log queries at or above this duration to /v1/trace (0 = off)")
	flag.Parse()

	cube, err := openCube(*dimsFlag, *cubePath, *autogrow)
	if err != nil {
		log.Fatal("ddcserver: ", err)
	}
	var wal *ddc.WAL
	if *walPath != "" {
		// Recover: replay any existing log into the cube, then rotate it
		// aside (<path>.old) so the fresh log starts from the recovered
		// state without losing the previous records on disk.
		if f, err := os.Open(*walPath); err == nil {
			n, rerr := ddc.ReplayWAL(f, cube)
			f.Close()
			if rerr != nil {
				log.Fatalf("ddcserver: replaying %s: %v", *walPath, rerr)
			}
			log.Printf("replayed %d records from %s", n, *walPath)
			if err := os.Rename(*walPath, *walPath+".old"); err != nil {
				log.Fatal("ddcserver: rotating log: ", err)
			}
		}
		f, err := os.Create(*walPath)
		if err != nil {
			log.Fatal("ddcserver: ", err)
		}
		defer f.Close()
		if wal, err = ddc.NewWAL(cube, f); err != nil {
			log.Fatal("ddcserver: ", err)
		}
	}
	srv := cubeserver.NewWithOptions(cube, wal, cubeserver.Options{
		Pprof:       *pprofFlag,
		TraceSample: *traceSample,
		SlowQuery:   *slowQuery,
	})
	log.Printf("serving cube dims=%v on %s", cube.Dims(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func openCube(dims, cubePath string, autogrow bool) (*ddc.DynamicCube, error) {
	if cubePath != "" {
		f, err := os.Open(cubePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ddc.LoadDynamic(f)
	}
	if dims == "" {
		return nil, fmt.Errorf("need -dims or -cube")
	}
	d, err := cubecli.ParsePoint(dims)
	if err != nil {
		return nil, fmt.Errorf("-dims: %v", err)
	}
	return ddc.NewDynamicWithOptions(d, ddc.Options{AutoGrow: autogrow})
}
