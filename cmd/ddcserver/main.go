// Command ddcserver serves a Dynamic Data Cube over HTTP/JSON: live
// point updates and range-sum analytics against the same cube — the
// interactive, continuously-updated data cube Section 1 of the paper
// argues for.
//
//	ddcserver -data DIR -dims 100,366 -addr :8080 [-autogrow]
//	          [-backend classic|blocked|blockfenwick]
//	          [-pprof] [-trace-sample N] [-slow-query 50ms]
//	          [-slo-objective 100ms]
//	          [-workload-capture FILE] [-capture-sample N]
//	          [-capture-max-bytes N]
//	ddcserver -dims 100,366 [-cube snap] [-wal log]   (legacy single-file mode)
//	ddcserver -version                                (print build identity)
//
// With -data the server runs on a durable store directory: recovery
// from the latest checkpoint plus WAL tail replay at startup,
// checksummed fsync'd commits per mutation, and checkpoint/rotate via
// POST /v1/checkpoint or automatic thresholds. -data conflicts with
// -cube/-wal.
//
// Endpoints: POST /v1/add, POST /v1/set, POST /v1/batch,
// POST /v1/checkpoint, GET /v1/get, GET /v1/sum, POST /v1/sum/batch,
// GET /v1/scan, GET /v1/explain, POST /v1/explain (span-traced batch
// EXPLAIN), GET /v1/stats, GET /v1/trace, GET /v1/workload (live
// query-shape profile), GET /v1/snapshot, GET /healthz, GET /readyz,
// GET /metrics (Prometheus text), and GET /debug/pprof/ with -pprof.
// See internal/cubeserver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ddc"
	"ddc/internal/cubecli"
	"ddc/internal/cubeserver"
	"ddc/internal/store"
	"ddc/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "durable store directory (checkpoints + WAL segments); conflicts with -cube/-wal")
	dimsFlag := flag.String("dims", "", "dimension sizes for a fresh cube, e.g. 100,366")
	cubePath := flag.String("cube", "", "snapshot to load instead of a fresh cube (legacy mode)")
	walPath := flag.String("wal", "", "append mutations to this write-ahead log, replayed at startup (legacy mode)")
	autogrow := flag.Bool("autogrow", false, "grow the cube for out-of-range updates")
	backend := flag.String("backend", "", "prefix-sum backend for row-sum groups: classic (default), blocked, blockfenwick; snapshots/WAL are backend-agnostic, so any data loads under any backend")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	traceSample := flag.Int("trace-sample", 0, "record a structured trace for 1 in N queries (0 = off)")
	slowQuery := flag.Duration("slow-query", 0, "log queries at or above this duration to /v1/trace (0 = off)")
	sloObjective := flag.Duration("slo-objective", 0, "latency objective for the SLO burn-rate counters in /metrics (0 = off)")
	version := flag.Bool("version", false, "print version, Go toolchain and backend, then exit")
	buffered := flag.Bool("buffered", false, "buffer writes in an in-memory delta front drained by a background merger (sustained-write mode; requires -data)")
	bufferMaxDelta := flag.Int("buffer-max-delta", 0, "delta depth that wakes the merger (0 = default 256; with -buffered)")
	bufferFlush := flag.Duration("buffer-flush-interval", 0, "merger tick interval (0 = default 1ms; with -buffered)")
	capturePath := flag.String("workload-capture", "", "append a DDCWKLD2 workload capture to this file (see FORMATS.md); replay with ddcbench -replay")
	captureSample := flag.Int("capture-sample", 1, "capture 1 in N queries (updates are always captured)")
	captureMaxBytes := flag.Int64("capture-max-bytes", 0, "rotate the capture file past this size, keeping one previous generation (0 = never)")
	flag.Parse()

	if *version {
		be := *backend
		if be == "" {
			be = "classic"
		}
		fmt.Printf("ddcserver version=%s go_version=%s backend=%s\n", ddc.Version, runtime.Version(), be)
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	opts := cubeserver.Options{
		Pprof:        *pprofFlag,
		TraceSample:  *traceSample,
		SlowQuery:    *slowQuery,
		SLOObjective: *sloObjective,
		Logger:       logger,
	}

	var handler http.Handler
	var dims []int
	shutdown := func() error { return nil }

	switch {
	case *dataDir != "":
		if *cubePath != "" || *walPath != "" {
			log.Fatal("ddcserver: -data conflicts with -cube/-wal")
		}
		if *dimsFlag != "" {
			var err error
			if dims, err = cubecli.ParsePoint(*dimsFlag); err != nil {
				log.Fatal("ddcserver: -dims: ", err)
			}
		}
		// Server construction enables telemetry, but recovery happens
		// first — turn it on now so the startup recovery and checkpoint
		// land in /metrics.
		ddc.GlobalTelemetry().Enable()
		st, err := store.Open(*dataDir, store.Options{
			Dims:     dims,
			Cube:     ddc.Options{AutoGrow: *autogrow, Backend: *backend},
			Buffered: *buffered,
			Buffer: ddc.BufferedOptions{
				MaxDelta:      *bufferMaxDelta,
				FlushInterval: *bufferFlush,
			},
		})
		if err != nil {
			log.Fatal("ddcserver: opening store: ", err)
		}
		rec := st.Recovery()
		log.Printf("store %s: recovered snapshot seq %d + %d segments (%d records%s)",
			st.Dir(), rec.SnapshotSeq, rec.Segments, rec.Records,
			map[bool]string{true: ", torn tail dropped", false: ""}[rec.TornTail])
		if *buffered {
			opts.Buffered = st.Buffered()
			log.Print("buffered write front enabled (delta + background merger)")
		}
		handler = cubeserver.NewWithPersistence(st.Cube(), st, opts)
		dims = st.Cube().Dims()
		shutdown = st.Close
	default:
		if *buffered {
			log.Fatal("ddcserver: -buffered requires -data")
		}
		// A previous run may have checkpointed recovered WAL state to
		// <wal>.ckpt; pick it up when no explicit snapshot is given.
		base := *cubePath
		if base == "" && *walPath != "" {
			if _, err := os.Stat(*walPath + ".ckpt"); err == nil {
				base = *walPath + ".ckpt"
				log.Printf("loading checkpoint %s", base)
			}
		}
		cube, err := openCube(*dimsFlag, base, *autogrow, *backend)
		if err != nil {
			log.Fatal("ddcserver: ", err)
		}
		var wal *ddc.WAL
		if *walPath != "" {
			var f *os.File
			if wal, f, err = openLegacyWAL(cube, *walPath); err != nil {
				log.Fatal("ddcserver: ", err)
			}
			shutdown = func() error {
				return errors.Join(wal.Flush(), f.Close())
			}
		}
		handler = cubeserver.NewWithOptions(cube, wal, opts)
		dims = cube.Dims()
	}

	if *capturePath != "" {
		cp, err := workload.NewCapture(workload.CaptureOptions{
			Path:          *capturePath,
			Dims:          dims,
			SampleQueries: *captureSample,
			MaxBytes:      *captureMaxBytes,
		})
		if err != nil {
			log.Fatal("ddcserver: -workload-capture: ", err)
		}
		ddc.GlobalTelemetry().AttachCapture(cp)
		log.Printf("capturing workload to %s (1 in %d queries, all updates)", *capturePath, *captureSample)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving cube dims=%v on %s", dims, *addr)

	select {
	case err := <-errCh:
		log.Fatal("ddcserver: ", err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Print("ddcserver: shutdown: ", err)
		}
		// Flush the workload capture before telemetry goes quiet: detach
		// first so no record races the close, then drain the buffer and
		// sync. A torn in-flight record at the tail is tolerated by
		// readers, but a graceful exit should not leave one.
		if cp := ddc.GlobalTelemetry().AttachCapture(nil); cp != nil {
			st := cp.Stats()
			if err := cp.Close(); err != nil {
				log.Print("ddcserver: closing workload capture: ", err)
			} else {
				log.Printf("workload capture closed: %d records (%d updates, %d queries, %d sampled out) in %d bytes",
					st.Records, st.Updates, st.Queries, st.SampledOut, st.Bytes)
			}
		}
		// Persist every acknowledged mutation before exiting: flush and
		// sync the WAL (legacy mode) or checkpoint and close the store.
		if err := shutdown(); err != nil {
			log.Fatal("ddcserver: closing persistence: ", err)
		}
		// Drain observability before the process dies: the slow-query
		// ring and a final metric snapshot go to the structured log, so
		// a post-mortem has the last traces even without a scraper.
		flushObservability(logger)
	}
}

// flushObservability writes the retained slow/sampled traces and a
// final telemetry snapshot to the structured log — the shutdown-time
// flush that keeps the last window of evidence out of a dying process.
func flushObservability(logger *slog.Logger) {
	tel := ddc.GlobalTelemetry()
	traces := tel.Traces()
	capacity, dropped := tel.TraceRingStats()
	for _, tr := range traces {
		logger.Info("retained trace",
			"seq", tr.Seq, "op", tr.Op, "duration_ns", tr.DurationNs,
			"slow", tr.Slow, "trace_id", tr.TraceID,
			"node_visits", tr.NodeVisits, "spans", len(tr.Spans))
	}
	snap := tel.Snapshot()
	logger.Info("final telemetry snapshot",
		"traces_flushed", len(traces), "trace_ring_capacity", capacity,
		"trace_ring_dropped", dropped,
		"queries", snap.Queries, "updates", snap.Updates,
		"query_node_visits", snap.QueryNodeVisits,
		"query_cells", snap.QueryCells,
		"slow_queries", snap.SlowQueries,
		"slo_objective_ns", snap.SLOObjectiveNs,
		"slo_good", snap.SLOGood, "slo_requests", snap.SLORequests,
		"wal_appends", snap.WALAppends, "wal_flushes", snap.WALFlushes,
		"store_checkpoints", snap.StoreCheckpoints)
}

// openLegacyWAL recovers a single-file WAL: replay the existing log,
// save a snapshot of the recovered state to <path>.ckpt, and only then
// rotate the log aside (<path>.old) and start a fresh one.
// Snapshotting before the rotation means a crash right after startup
// cannot lose the replayed records — previously they lived only in
// memory and in a .old file the next boot ignored.
func openLegacyWAL(cube *ddc.DynamicCube, walPath string) (*ddc.WAL, *os.File, error) {
	if f, err := os.Open(walPath); err == nil {
		// A log shorter than its 12-byte header is the signature of a
		// crash between creating the file and flushing the header — no
		// record in it was ever acknowledged. Treat it as empty.
		var n uint64
		if fi, serr := f.Stat(); serr == nil && fi.Size() < 12 {
			log.Printf("ignoring header-less log %s (%d bytes, crash during creation)", walPath, fi.Size())
		} else {
			var rerr error
			n, rerr = ddc.ReplayWAL(f, cube)
			if rerr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("replaying %s: %v", walPath, rerr)
			}
			log.Printf("replayed %d records from %s", n, walPath)
		}
		f.Close()
		snapPath := walPath + ".ckpt"
		if err := saveSnapshot(cube, snapPath); err != nil {
			return nil, nil, fmt.Errorf("checkpointing recovered state: %v", err)
		}
		log.Printf("checkpointed recovered state to %s", snapPath)
		if err := os.Rename(walPath, walPath+".old"); err != nil {
			return nil, nil, fmt.Errorf("rotating log: %v", err)
		}
	}
	f, err := os.Create(walPath)
	if err != nil {
		return nil, nil, err
	}
	wal, err := ddc.NewWAL(cube, f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Commit the header immediately so a crash before the first mutation
	// leaves a well-formed empty log rather than an empty file.
	if err := wal.Flush(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return wal, f, nil
}

// saveSnapshot writes the cube atomically: temp file next to the
// target (so the rename stays on one filesystem), fsync, rename.
func saveSnapshot(cube *ddc.DynamicCube, path string) error {
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if err := cube.SaveCompact(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(path+".tmp", path)
}

func openCube(dims, cubePath string, autogrow bool, backend string) (*ddc.DynamicCube, error) {
	if cubePath != "" {
		f, err := os.Open(cubePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ddc.LoadDynamicBackend(f, backend)
	}
	if dims == "" {
		return nil, fmt.Errorf("need -dims or -cube")
	}
	d, err := cubecli.ParsePoint(dims)
	if err != nil {
		return nil, fmt.Errorf("-dims: %v", err)
	}
	return ddc.NewDynamicWithOptions(d, ddc.Options{AutoGrow: autogrow, Backend: backend})
}
