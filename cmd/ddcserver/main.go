// Command ddcserver serves a Dynamic Data Cube over HTTP/JSON: live
// point updates and range-sum analytics against the same cube — the
// interactive, continuously-updated data cube Section 1 of the paper
// argues for.
//
//	ddcserver -dims 100,366 -addr :8080 [-cube snap] [-wal log] [-autogrow]
//
// Endpoints: POST /v1/add, POST /v1/set, GET /v1/get, GET /v1/sum,
// GET /v1/stats, GET /v1/snapshot. See internal/cubeserver.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"ddc"
	"ddc/internal/cubecli"
	"ddc/internal/cubeserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dimsFlag := flag.String("dims", "", "dimension sizes for a fresh cube, e.g. 100,366")
	cubePath := flag.String("cube", "", "snapshot to load instead of a fresh cube")
	walPath := flag.String("wal", "", "append mutations to this write-ahead log (replayed at startup if it exists)")
	autogrow := flag.Bool("autogrow", false, "grow the cube for out-of-range updates")
	flag.Parse()

	cube, err := openCube(*dimsFlag, *cubePath, *autogrow)
	if err != nil {
		log.Fatal("ddcserver: ", err)
	}
	var wal *ddc.WAL
	if *walPath != "" {
		// Recover: replay any existing log into the cube, then rotate it
		// aside (<path>.old) so the fresh log starts from the recovered
		// state without losing the previous records on disk.
		if f, err := os.Open(*walPath); err == nil {
			n, rerr := ddc.ReplayWAL(f, cube)
			f.Close()
			if rerr != nil {
				log.Fatalf("ddcserver: replaying %s: %v", *walPath, rerr)
			}
			log.Printf("replayed %d records from %s", n, *walPath)
			if err := os.Rename(*walPath, *walPath+".old"); err != nil {
				log.Fatal("ddcserver: rotating log: ", err)
			}
		}
		f, err := os.Create(*walPath)
		if err != nil {
			log.Fatal("ddcserver: ", err)
		}
		defer f.Close()
		if wal, err = ddc.NewWAL(cube, f); err != nil {
			log.Fatal("ddcserver: ", err)
		}
	}
	log.Printf("serving cube dims=%v on %s", cube.Dims(), *addr)
	log.Fatal(http.ListenAndServe(*addr, cubeserver.New(cube, wal)))
}

func openCube(dims, cubePath string, autogrow bool) (*ddc.DynamicCube, error) {
	if cubePath != "" {
		f, err := os.Open(cubePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ddc.LoadDynamic(f)
	}
	if dims == "" {
		return nil, fmt.Errorf("need -dims or -cube")
	}
	d, err := cubecli.ParsePoint(dims)
	if err != nil {
		return nil, fmt.Errorf("-dims: %v", err)
	}
	return ddc.NewDynamicWithOptions(d, ddc.Options{AutoGrow: autogrow})
}
