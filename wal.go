package ddc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"ddc/internal/obs"
)

// The write-ahead log makes the paper's dynamic-update story durable: a
// stream of point mutations is appended to a log as it is applied, and
// can be replayed into a fresh (or snapshotted) cube after a restart.
// Combine with Save/LoadDynamic for the usual checkpoint + tail-replay
// recovery scheme, or use internal/store for the full data-directory
// engine (segment rotation, checkpoints, crash recovery).

// walMagic opens a version-1 log stream (unframed records, no
// checksums). Replay still reads it; new logs are written as version 2.
var walMagic = [8]byte{'D', 'D', 'C', 'W', 'A', 'L', '0', '1'}

// walMagic2 opens a version-2 log stream: every record is framed by a
// length prefix and a CRC32C (Castagnoli) checksum of its payload, so
// torn tails are distinguishable from corruption.
var walMagic2 = [8]byte{'D', 'D', 'C', 'W', 'A', 'L', '0', '2'}

// walHeaderSize is the stream header: 8-byte magic + uint32 dims.
const walHeaderSize = 12

// castagnoli is the CRC32C table used by the v2 record framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log record opcodes.
const (
	walOpAdd      = uint8(1) // add delta to a cell
	walOpSet      = uint8(2) // set a cell's value
	walOpRangeAdd = uint8(3) // add delta to every cell of a box (v2 only)
)

// ErrBadWAL is returned for malformed log streams.
var ErrBadWAL = errors.New("ddc: bad write-ahead log")

// walSyncer is the optional commit-point durability hook: if the writer
// handed to NewWAL implements it (*os.File does), Flush calls Sync after
// flushing so acknowledged mutations survive power loss, not just
// process death.
type walSyncer interface{ Sync() error }

// WAL appends cube mutations to an io.Writer as they are applied to an
// underlying Cube, in the version-2 checksummed format. It is not safe
// for concurrent use; wrap the WAL (not the inner cube) in Synchronized
// if needed.
//
// Mutations are validated by applying them to the inner cube first and
// appended to the log only on success, so a rejected (e.g.
// out-of-bounds) mutation can never poison the log: every record in a
// WAL stream replays cleanly into an equivalent cube. If the log write
// itself fails after the cube accepted the mutation, the error is
// returned, the WAL poisons itself (every later mutation fails fast),
// and the in-memory cube is ahead of the log — the caller must treat
// the store as failed and recover from disk.
type WAL struct {
	c     Cube
	w     *bufio.Writer
	sync  walSyncer // optional fsync hook, detected from the writer
	d     int
	n     uint64 // records written
	bytes uint64 // bytes appended, including the stream header
	buf   []byte // record payload scratch
	err   error  // first write/sync error; subsequent mutations fail fast

	// tsc/tparent attach a request's span trace to the log: while set,
	// every append and flush records a child span. Mutations through a
	// WAL are serialized (documented above), so plain fields suffice.
	tsc     *obs.SpanContext
	tparent obs.SpanID
}

// NewWAL wraps c so every accepted Add/Set is logged to w (version-2
// format). It writes the stream header immediately. If w implements
// `Sync() error` (as *os.File does), Flush becomes a true commit point:
// buffered records are flushed and fsynced.
func NewWAL(c Cube, w io.Writer) (*WAL, error) {
	l := &WAL{c: c, w: bufio.NewWriter(w), d: len(c.Dims())}
	if s, ok := w.(walSyncer); ok {
		l.sync = s
	}
	if _, err := l.w.Write(walMagic2[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(l.w, binary.LittleEndian, uint32(l.d)); err != nil {
		return nil, err
	}
	l.bytes = walHeaderSize
	return l, nil
}

// Err returns the error that poisoned the log (nil while healthy).
// Once non-nil every later mutation fails fast with it; the caller must
// treat the store as failed and recover from disk. Readiness probes
// (the server's /readyz) surface it.
func (l *WAL) Err() error { return l.err }

// TraceSpans attaches a span trace: while sc is non-nil, every append
// and flush records a child span ("wal.append" / "wal.flush") under
// parent. Pass nil to detach. Mutations through a WAL are serialized,
// so call this under the same exclusion as Add/Set/Flush.
func (l *WAL) TraceSpans(sc *obs.SpanContext, parent obs.SpanID) {
	l.tsc, l.tparent = sc, parent
}

// Records returns the number of mutation records written.
func (l *WAL) Records() uint64 { return l.n }

// Bytes returns the number of log bytes appended so far (stream header
// included), counting buffered bytes not yet flushed.
func (l *WAL) Bytes() uint64 { return l.bytes }

// Flush flushes buffered log records to the underlying writer and, if
// the writer has a Sync hook, fsyncs them. Call it at commit points;
// mutations are not durable until Flush returns nil.
func (l *WAL) Flush() error {
	if l.err != nil {
		return l.err
	}
	if l.tsc != nil {
		span := l.tsc.Start("wal.flush", l.tparent)
		defer l.tsc.End(span)
	}
	tel := globalTelemetry
	if !tel.on() {
		return l.flush()
	}
	start := time.Now()
	err := l.flush()
	tel.recordWALFlush(time.Since(start))
	return err
}

func (l *WAL) flush() error {
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if l.sync != nil {
		if err := l.sync.Sync(); err != nil {
			// A failed fsync leaves the kernel's view of the file
			// unknowable; poison the log rather than retry.
			l.err = err
			return err
		}
	}
	return nil
}

// append frames and writes one point record: uint32 payload length,
// uint32 CRC32C of the payload, then the payload (op, point, value).
func (l *WAL) append(op uint8, p []int, v int64) error {
	if l.err != nil {
		return l.err
	}
	if l.tsc != nil {
		span := l.tsc.Start("wal.append", l.tparent)
		defer l.tsc.End(span)
	}
	tel := globalTelemetry
	if tel.on() {
		start := time.Now()
		defer func() { tel.recordWALAppend(time.Since(start)) }()
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, op)
	for _, x := range p {
		l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(int64(x)))
	}
	l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(v))
	return l.writeRecord()
}

// appendRange frames and writes one range record: the payload is the
// opcode, the 8-byte low corner coordinates, the 8-byte high corner
// coordinates, then the 8-byte delta — 1+16d+8 bytes, so replay can
// pair the opcode with the longer frame.
func (l *WAL) appendRange(lo, hi []int, v int64) error {
	if l.err != nil {
		return l.err
	}
	if l.tsc != nil {
		span := l.tsc.Start("wal.append", l.tparent)
		defer l.tsc.End(span)
	}
	tel := globalTelemetry
	if tel.on() {
		start := time.Now()
		defer func() { tel.recordWALAppend(time.Since(start)) }()
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, walOpRangeAdd)
	for _, x := range lo {
		l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(int64(x)))
	}
	for _, x := range hi {
		l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(int64(x)))
	}
	l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(v))
	return l.writeRecord()
}

// writeRecord frames l.buf (uint32 length + uint32 CRC32C) and writes
// it, poisoning the log on failure.
func (l *WAL) writeRecord() error {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(l.buf)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(l.buf, castagnoli))
	if _, err := l.w.Write(frame[:]); err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(l.buf); err != nil {
		l.err = err
		return err
	}
	l.n++
	l.bytes += uint64(len(frame) + len(l.buf))
	return nil
}

// Add implements Cube: apply (validating bounds), then log.
func (l *WAL) Add(p []int, delta int64) error {
	if l.err != nil {
		return l.err
	}
	if len(p) != l.d {
		return fmt.Errorf("%w: point has %d dims, log has %d", ErrBadWAL, len(p), l.d)
	}
	if err := l.c.Add(p, delta); err != nil {
		return err
	}
	return l.append(walOpAdd, p, delta)
}

// RangeAdd implements Cube: apply (validating the box), then log one
// range record — the log grows by one record regardless of the box
// volume, matching the lazy path's cost profile.
func (l *WAL) RangeAdd(lo, hi []int, delta int64) error {
	if l.err != nil {
		return l.err
	}
	if len(lo) != l.d || len(hi) != l.d {
		return fmt.Errorf("%w: box has %d/%d dims, log has %d", ErrBadWAL, len(lo), len(hi), l.d)
	}
	if err := l.c.RangeAdd(lo, hi, delta); err != nil {
		return err
	}
	return l.appendRange(lo, hi, delta)
}

// Set implements Cube: apply (validating bounds), then log.
func (l *WAL) Set(p []int, value int64) error {
	if l.err != nil {
		return l.err
	}
	if len(p) != l.d {
		return fmt.Errorf("%w: point has %d dims, log has %d", ErrBadWAL, len(p), l.d)
	}
	if err := l.c.Set(p, value); err != nil {
		return err
	}
	return l.append(walOpSet, p, value)
}

// Read-only methods delegate to the inner cube.

// Dims implements Cube.
func (l *WAL) Dims() []int { return l.c.Dims() }

// Get implements Cube.
func (l *WAL) Get(p []int) int64 { return l.c.Get(p) }

// Prefix implements Cube.
func (l *WAL) Prefix(p []int) int64 { return l.c.Prefix(p) }

// RangeSum implements Cube.
func (l *WAL) RangeSum(lo, hi []int) (int64, error) { return l.c.RangeSum(lo, hi) }

// RangeSumBatch implements Cube, delegating to the inner cube's batched
// engine (reads are never logged).
func (l *WAL) RangeSumBatch(queries []RangeQuery) ([]int64, error) {
	return l.c.RangeSumBatch(queries)
}

// Total implements Cube.
func (l *WAL) Total() int64 { return l.c.Total() }

// Ops implements Cube.
func (l *WAL) Ops() OpCounts { return l.c.Ops() }

// ResetOps implements Cube.
func (l *WAL) ResetOps() { l.c.ResetOps() }

// Unwrap returns the inner cube.
func (l *WAL) Unwrap() Cube { return l.c }

// WALReplayStats reports what a replay consumed.
type WALReplayStats struct {
	// Applied is the number of records applied to the cube.
	Applied uint64
	// Version is the stream's format version (1 or 2).
	Version int
	// Torn reports that the stream ended inside a record — the clean
	// truncation signature of a crash mid-append. The complete prefix
	// was applied; the partial record was dropped.
	Torn bool
}

// ReplayWAL applies every record in a log stream (either format
// version) to c and returns the number of records applied. A cleanly
// truncated tail (mid-record EOF, as after a crash) stops the replay
// without error; corrupt headers, opcodes, checksum mismatches, or
// records the cube rejects return ErrBadWAL, and underlying reader
// failures are returned as-is — a disk I/O error is never mistaken for
// a successful recovery.
func ReplayWAL(r io.Reader, c Cube) (applied uint64, err error) {
	st, err := ReplayWALStats(r, c)
	return st.Applied, err
}

// ReplayWALStats is ReplayWAL with a full report: format version and
// whether the stream ended in a torn record (so callers like
// internal/store can reject torn tails anywhere but the final segment).
func ReplayWALStats(r io.Reader, c Cube) (WALReplayStats, error) {
	var st WALReplayStats
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return st, fmt.Errorf("%w: missing header: %v", ErrBadWAL, err)
	}
	var d32 uint32
	if err := binary.Read(br, binary.LittleEndian, &d32); err != nil {
		return st, fmt.Errorf("%w: truncated header", ErrBadWAL)
	}
	d := int(d32)
	if d != len(c.Dims()) {
		return st, fmt.Errorf("%w: log is %d-dimensional, cube is %d", ErrBadWAL, d, len(c.Dims()))
	}
	switch magic {
	case walMagic:
		st.Version = 1
		err := replayV1(br, c, d, &st)
		return st, err
	case walMagic2:
		st.Version = 2
		err := replayV2(br, c, d, &st)
		return st, err
	}
	return st, fmt.Errorf("%w: bad magic", ErrBadWAL)
}

// torn marks the replay as ending in a partial record and counts the
// drop.
func (st *WALReplayStats) torn() {
	st.Torn = true
	if tel := globalTelemetry; tel.on() {
		tel.recordWALTornDrop()
	}
}

// applyRecord applies one decoded record; cube rejections are format
// errors (the writer never logs a rejected mutation).
func applyRecord(c Cube, op uint8, p []int, v int64, rec uint64) error {
	var err error
	if op == walOpAdd {
		err = c.Add(p, v)
	} else {
		err = c.Set(p, v)
	}
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrBadWAL, rec, err)
	}
	return nil
}

// replayV1 reads the version-1 unframed record stream. Only a clean
// end-of-stream (EOF at a record boundary or mid-record, the torn-tail
// crash signature) stops without error; any other reader failure is
// returned to the caller.
func replayV1(br *bufio.Reader, c Cube, d int, st *WALReplayStats) error {
	p := make([]int, d)
	var field [8]byte
	readInt64 := func() (int64, error) {
		if _, err := io.ReadFull(br, field[:]); err != nil {
			return 0, err
		}
		return int64(binary.LittleEndian.Uint64(field[:])), nil
	}
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if op != walOpAdd && op != walOpSet {
			return fmt.Errorf("%w: unknown opcode %d at record %d", ErrBadWAL, op, st.Applied)
		}
		for j := 0; j < d; j++ {
			x, err := readInt64()
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				st.torn()
				return nil
			}
			if err != nil {
				return err
			}
			p[j] = int(x)
		}
		v, err := readInt64()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			st.torn()
			return nil
		}
		if err != nil {
			return err
		}
		if err := applyRecord(c, op, p, v, st.Applied); err != nil {
			return err
		}
		st.Applied++
	}
}

// replayV2 reads the version-2 framed record stream: length, CRC32C,
// payload. Two record layouts exist — point records (op, point, value:
// 1+8d+8 bytes) and range records (op, lo corner, hi corner, delta:
// 1+16d+8 bytes) — distinguished by the frame length, which must agree
// with the decoded opcode. A record cut anywhere is a torn tail; a
// full-length record whose checksum or framing disagrees is corruption.
func replayV2(br *bufio.Reader, c Cube, d int, st *WALReplayStats) error {
	pointLen := 1 + 8*d + 8  // op + point + value
	rangeLen := 1 + 16*d + 8 // op + lo + hi + delta
	p := make([]int, d)
	hi := make([]int, d)
	var frame [8]byte
	payload := make([]byte, rangeLen)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return nil // clean end at a record boundary
			}
			if err == io.ErrUnexpectedEOF {
				st.torn()
				return nil
			}
			return err
		}
		length := int(binary.LittleEndian.Uint32(frame[0:4]))
		want := binary.LittleEndian.Uint32(frame[4:8])
		if length != pointLen && length != rangeLen {
			return fmt.Errorf("%w: record %d: bad length %d (want %d or %d)", ErrBadWAL, st.Applied, length, pointLen, rangeLen)
		}
		if _, err := io.ReadFull(br, payload[:length]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				st.torn()
				return nil
			}
			return err
		}
		if got := crc32.Checksum(payload[:length], castagnoli); got != want {
			if tel := globalTelemetry; tel.on() {
				tel.recordWALChecksumReject()
			}
			return fmt.Errorf("%w: record %d: checksum mismatch (got %08x, want %08x)", ErrBadWAL, st.Applied, got, want)
		}
		op := payload[0]
		switch op {
		case walOpAdd, walOpSet:
			if length != pointLen {
				return fmt.Errorf("%w: record %d: opcode %d with range-record length %d", ErrBadWAL, st.Applied, op, length)
			}
			for j := 0; j < d; j++ {
				p[j] = int(int64(binary.LittleEndian.Uint64(payload[1+8*j:])))
			}
			v := int64(binary.LittleEndian.Uint64(payload[1+8*d:]))
			if err := applyRecord(c, op, p, v, st.Applied); err != nil {
				return err
			}
		case walOpRangeAdd:
			if length != rangeLen {
				return fmt.Errorf("%w: record %d: opcode %d with point-record length %d", ErrBadWAL, st.Applied, op, length)
			}
			for j := 0; j < d; j++ {
				p[j] = int(int64(binary.LittleEndian.Uint64(payload[1+8*j:])))
				hi[j] = int(int64(binary.LittleEndian.Uint64(payload[1+8*(d+j):])))
			}
			v := int64(binary.LittleEndian.Uint64(payload[1+16*d:]))
			if err := c.RangeAdd(p, hi, v); err != nil {
				return fmt.Errorf("%w: record %d: %v", ErrBadWAL, st.Applied, err)
			}
		default:
			return fmt.Errorf("%w: unknown opcode %d at record %d", ErrBadWAL, op, st.Applied)
		}
		st.Applied++
	}
}
