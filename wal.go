package ddc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// The write-ahead log makes the paper's dynamic-update story durable: a
// stream of point mutations is appended to a log as it is applied, and
// can be replayed into a fresh (or snapshotted) cube after a restart.
// Combine with Save/LoadDynamic for the usual checkpoint + tail-replay
// recovery scheme.

// walMagic opens a log stream (version 1).
var walMagic = [8]byte{'D', 'D', 'C', 'W', 'A', 'L', '0', '1'}

// Log record opcodes.
const (
	walOpAdd = uint8(1) // add delta to a cell
	walOpSet = uint8(2) // set a cell's value
)

// ErrBadWAL is returned for malformed log streams.
var ErrBadWAL = errors.New("ddc: bad write-ahead log")

// WAL appends cube mutations to an io.Writer as they are applied to an
// underlying Cube. It is not safe for concurrent use; wrap the WAL (not
// the inner cube) in Synchronized if needed.
type WAL struct {
	c   Cube
	w   *bufio.Writer
	d   int
	n   uint64 // records written
	err error  // first write error; subsequent mutations fail fast
}

// NewWAL wraps c so every Add/Set is logged to w before being applied.
// It writes the stream header immediately.
func NewWAL(c Cube, w io.Writer) (*WAL, error) {
	l := &WAL{c: c, w: bufio.NewWriter(w), d: len(c.Dims())}
	if _, err := l.w.Write(walMagic[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(l.w, binary.LittleEndian, uint32(l.d)); err != nil {
		return nil, err
	}
	return l, nil
}

// Records returns the number of mutation records written.
func (l *WAL) Records() uint64 { return l.n }

// Flush flushes buffered log records to the underlying writer. Call it
// at commit points; mutations are not durable until flushed.
func (l *WAL) Flush() error {
	if l.err != nil {
		return l.err
	}
	tel := globalTelemetry
	if !tel.on() {
		return l.w.Flush()
	}
	start := time.Now()
	err := l.w.Flush()
	tel.recordWALFlush(time.Since(start))
	return err
}

// append writes one record.
func (l *WAL) append(op uint8, p []int, v int64) error {
	if l.err != nil {
		return l.err
	}
	tel := globalTelemetry
	if tel.on() {
		start := time.Now()
		defer func() { tel.recordWALAppend(time.Since(start)) }()
	}
	if len(p) != l.d {
		return fmt.Errorf("%w: point has %d dims, log has %d", ErrBadWAL, len(p), l.d)
	}
	if err := l.w.WriteByte(op); err != nil {
		l.err = err
		return err
	}
	for _, x := range p {
		if err := binary.Write(l.w, binary.LittleEndian, int64(x)); err != nil {
			l.err = err
			return err
		}
	}
	if err := binary.Write(l.w, binary.LittleEndian, v); err != nil {
		l.err = err
		return err
	}
	l.n++
	return nil
}

// Add implements Cube: log, then apply.
func (l *WAL) Add(p []int, delta int64) error {
	if err := l.append(walOpAdd, p, delta); err != nil {
		return err
	}
	return l.c.Add(p, delta)
}

// Set implements Cube: log, then apply.
func (l *WAL) Set(p []int, value int64) error {
	if err := l.append(walOpSet, p, value); err != nil {
		return err
	}
	return l.c.Set(p, value)
}

// Read-only methods delegate to the inner cube.

// Dims implements Cube.
func (l *WAL) Dims() []int { return l.c.Dims() }

// Get implements Cube.
func (l *WAL) Get(p []int) int64 { return l.c.Get(p) }

// Prefix implements Cube.
func (l *WAL) Prefix(p []int) int64 { return l.c.Prefix(p) }

// RangeSum implements Cube.
func (l *WAL) RangeSum(lo, hi []int) (int64, error) { return l.c.RangeSum(lo, hi) }

// Total implements Cube.
func (l *WAL) Total() int64 { return l.c.Total() }

// Ops implements Cube.
func (l *WAL) Ops() OpCounts { return l.c.Ops() }

// ResetOps implements Cube.
func (l *WAL) ResetOps() { l.c.ResetOps() }

// Unwrap returns the inner cube.
func (l *WAL) Unwrap() Cube { return l.c }

// ReplayWAL applies every record in a log stream to c and returns the
// number of records applied. A cleanly truncated tail (mid-record EOF,
// as after a crash) stops the replay without error; corrupt headers or
// opcodes return ErrBadWAL.
func ReplayWAL(r io.Reader, c Cube) (applied uint64, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("%w: missing header: %v", ErrBadWAL, err)
	}
	if magic != walMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadWAL)
	}
	var d32 uint32
	if err := binary.Read(br, binary.LittleEndian, &d32); err != nil {
		return 0, fmt.Errorf("%w: truncated header", ErrBadWAL)
	}
	d := int(d32)
	if d != len(c.Dims()) {
		return 0, fmt.Errorf("%w: log is %d-dimensional, cube is %d", ErrBadWAL, d, len(c.Dims()))
	}
	p := make([]int, d)
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		if op != walOpAdd && op != walOpSet {
			return applied, fmt.Errorf("%w: unknown opcode %d at record %d", ErrBadWAL, op, applied)
		}
		ok := true
		for j := 0; j < d; j++ {
			var x int64
			if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
				ok = false
				break
			}
			p[j] = int(x)
		}
		if !ok {
			return applied, nil // torn tail record: stop cleanly
		}
		var v int64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return applied, nil // torn tail record
		}
		if op == walOpAdd {
			err = c.Add(p, v)
		} else {
			err = c.Set(p, v)
		}
		if err != nil {
			return applied, fmt.Errorf("%w: record %d: %v", ErrBadWAL, applied, err)
		}
		applied++
	}
}
