package ddc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"testing"
)

// This file is the WAL fault-injection harness: failing and
// short-writing sinks, torn tails, and the crash/corruption matrix
// (truncate at every offset, flip every byte) that proves recovery is
// always either a clean prefix or a typed error — never silent wrong
// data.

type walRec struct {
	op uint8
	p  []int
	v  int64
}

// buildV1Log hand-writes a version-1 (unframed, checksum-free) stream,
// which NewWAL no longer produces, to pin backward-compatible replay.
func buildV1Log(d int, recs []walRec) []byte {
	var b bytes.Buffer
	b.Write(walMagic[:])
	_ = binary.Write(&b, binary.LittleEndian, uint32(d))
	for _, r := range recs {
		b.WriteByte(r.op)
		for _, x := range r.p {
			_ = binary.Write(&b, binary.LittleEndian, int64(x))
		}
		_ = binary.Write(&b, binary.LittleEndian, r.v)
	}
	return b.Bytes()
}

// buildV2Log writes a stream through the real writer.
func buildV2Log(t *testing.T, dims []int, recs []walRec) []byte {
	t.Helper()
	var b bytes.Buffer
	w, err := NewWAL(mustNewDynamic(t, dims), &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.op == walOpAdd {
			err = w.Add(r.p, r.v)
		} else {
			err = w.Set(r.p, r.v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// testRecs is a deterministic mutation stream for the matrix tests.
func testRecs(n int) []walRec {
	recs := make([]walRec, n)
	for i := range recs {
		op := walOpAdd
		if i%3 == 2 {
			op = walOpSet
		}
		recs[i] = walRec{op: op, p: []int{i % 8, (i * 3) % 8}, v: int64(i + 1)}
	}
	return recs
}

// prefixCube applies the first k records to a fresh cube.
func prefixCube(t *testing.T, dims []int, recs []walRec, k int) *DynamicCube {
	t.Helper()
	c := mustNewDynamic(t, dims)
	for _, r := range recs[:k] {
		var err error
		if r.op == walOpAdd {
			err = c.Add(r.p, r.v)
		} else {
			err = c.Set(r.p, r.v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func cubesEqual(a, b *DynamicCube, dims []int) bool {
	if a.Total() != b.Total() {
		return false
	}
	p := make([]int, 2)
	for x := 0; x < dims[0]; x++ {
		for y := 0; y < dims[1]; y++ {
			p[0], p[1] = x, y
			if a.Get(p) != b.Get(p) {
				return false
			}
		}
	}
	return true
}

func TestReplayWALV1Compatible(t *testing.T) {
	dims := []int{8, 8}
	recs := testRecs(9)
	stream := buildV1Log(2, recs)
	c := mustNewDynamic(t, dims)
	st, err := ReplayWALStats(bytes.NewReader(stream), c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 1 || st.Applied != 9 || st.Torn {
		t.Fatalf("stats = %+v, want version 1, 9 applied, no torn tail", st)
	}
	if !cubesEqual(c, prefixCube(t, dims, recs, 9), dims) {
		t.Fatal("v1 replay diverged from direct application")
	}
	// Torn v1 tail still stops cleanly.
	c2 := mustNewDynamic(t, dims)
	st, err = ReplayWALStats(bytes.NewReader(stream[:len(stream)-5]), c2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 8 || !st.Torn {
		t.Fatalf("torn v1 stats = %+v, want 8 applied, torn", st)
	}
}

// faultReader yields its data and then a (non-EOF) error, the signature
// of a failing disk mid-replay.
type faultReader struct {
	data []byte
	err  error
	off  int
}

func (r *faultReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestReplayWALPropagatesIOError is the regression test for the bug
// where any mid-record read failure was misreported as a clean torn
// tail: a real I/O error must surface, for both format versions.
func TestReplayWALPropagatesIOError(t *testing.T) {
	dims := []int{8, 8}
	recs := testRecs(6)
	errDisk := errors.New("simulated disk failure")
	streams := map[string][]byte{
		"v1": buildV1Log(2, recs),
		"v2": buildV2Log(t, dims, recs),
	}
	for name, stream := range streams {
		t.Run(name, func(t *testing.T) {
			// Fail inside the final record's payload.
			r := &faultReader{data: stream[:len(stream)-5], err: errDisk}
			_, err := ReplayWAL(r, mustNewDynamic(t, dims))
			if !errors.Is(err, errDisk) {
				t.Fatalf("error = %v, want the injected disk error", err)
			}
			// Fail at a record boundary: also an I/O error, not EOF.
			r = &faultReader{data: stream, err: errDisk}
			_, err = ReplayWAL(r, mustNewDynamic(t, dims))
			if !errors.Is(err, errDisk) {
				t.Fatalf("boundary error = %v, want the injected disk error", err)
			}
		})
	}
}

// TestWALRejectsMutationBeforeLogging is the regression test for the
// poisoned-log bug: an out-of-bounds mutation must be rejected before
// anything is appended, so the log always replays cleanly.
func TestWALRejectsMutationBeforeLogging(t *testing.T) {
	dims := []int{8, 8}
	var log bytes.Buffer
	w, err := NewWAL(mustNewDynamic(t, dims), &log)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{2, 2}, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{50, 50}, 1); err == nil {
		t.Fatal("out-of-bounds Add accepted")
	}
	if err := w.Set([]int{-1, 0}, 1); err == nil {
		t.Fatal("out-of-bounds Set accepted")
	}
	if w.Records() != 1 {
		t.Fatalf("Records = %d after rejected mutations, want 1", w.Records())
	}
	// The log is not poisoned: later mutations append and the whole
	// stream replays without ErrBadWAL.
	if err := w.Add([]int{3, 3}, 7); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fresh := mustNewDynamic(t, dims)
	applied, err := ReplayWAL(bytes.NewReader(log.Bytes()), fresh)
	if err != nil {
		t.Fatalf("replay of log that saw rejected mutations: %v", err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if fresh.Get([]int{2, 2}) != 5 || fresh.Get([]int{3, 3}) != 7 {
		t.Fatal("replayed state diverged")
	}
}

// failAfterWriter accepts n bytes, then fails every write.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	k := w.n
	w.n = 0
	return k, w.err
}

// shortWriter reports fewer bytes written than asked, with no error —
// bufio must turn that into io.ErrShortWrite rather than lose data.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) {
	if len(p) > 1 {
		return len(p) - 1, nil
	}
	return len(p), nil
}

func TestWALFailingWriterPoisonsLog(t *testing.T) {
	errDisk := errors.New("simulated full disk")
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), &failAfterWriter{n: 20, err: errDisk})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err) // buffered; not yet on "disk"
	}
	if err := w.Flush(); !errors.Is(err, errDisk) {
		t.Fatalf("Flush error = %v, want disk error", err)
	}
	// Poisoned: every later mutation and flush fails fast.
	if err := w.Add([]int{1, 1}, 1); !errors.Is(err, errDisk) {
		t.Fatalf("Add after failure = %v, want disk error", err)
	}
	if err := w.Flush(); !errors.Is(err, errDisk) {
		t.Fatalf("second Flush = %v, want disk error", err)
	}
}

func TestWALShortWriter(t *testing.T) {
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), shortWriter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Flush error = %v, want io.ErrShortWrite", err)
	}
}

// syncBuffer is an in-memory writer with a Sync hook, standing in for
// *os.File in commit-point tests.
type syncBuffer struct {
	bytes.Buffer
	syncs   int
	syncErr error
}

func (s *syncBuffer) Sync() error {
	if s.syncErr != nil {
		return s.syncErr
	}
	s.syncs++
	return nil
}

func TestWALFlushInvokesSync(t *testing.T) {
	var sink syncBuffer
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 0 {
		t.Fatalf("synced %d times before Flush", sink.syncs)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 1 {
		t.Fatalf("syncs = %d after Flush, want 1", sink.syncs)
	}
	if err := w.Flush(); err != nil || sink.syncs != 2 {
		t.Fatalf("second Flush: err=%v syncs=%d, want nil/2", err, sink.syncs)
	}
}

func TestWALSyncFailurePoisonsLog(t *testing.T) {
	errSync := errors.New("simulated fsync failure")
	sink := &syncBuffer{syncErr: errSync}
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); !errors.Is(err, errSync) {
		t.Fatalf("Flush error = %v, want sync error", err)
	}
	if err := w.Add([]int{1, 1}, 1); !errors.Is(err, errSync) {
		t.Fatalf("Add after failed fsync = %v, want sync error", err)
	}
}

// TestWALUnknownOpcodeWithValidChecksum crafts a correctly-framed
// record carrying a bogus opcode: the checksum passes, the opcode check
// must still reject it.
func TestWALUnknownOpcodeWithValidChecksum(t *testing.T) {
	var b bytes.Buffer
	b.Write(walMagic2[:])
	_ = binary.Write(&b, binary.LittleEndian, uint32(2))
	payload := make([]byte, 1+16+8)
	payload[0] = 99
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	b.Write(frame[:])
	b.Write(payload)
	if _, err := ReplayWAL(bytes.NewReader(b.Bytes()), mustNewDynamic(t, []int{8, 8})); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("error = %v, want ErrBadWAL", err)
	}
}

// TestConcurrentWALCrashCorruptionMatrix truncates a valid stream at
// every byte offset and flips every byte, asserting the recovery
// invariant: the outcome is a clean prefix of the acknowledged
// mutations or a typed ErrBadWAL — never silently divergent data. The
// offsets are sharded over goroutines so the -race concurrent tier
// exercises the replay path in parallel.
func TestConcurrentWALCrashCorruptionMatrix(t *testing.T) {
	dims := []int{8, 8}
	nrec := 10
	recs := testRecs(nrec)
	stream := buildV2Log(t, dims, recs)
	recSize := 8 + 1 + 16 + 8 // frame + op + point + value
	if want := walHeaderSize + nrec*recSize; len(stream) != want {
		t.Fatalf("stream is %d bytes, want %d", len(stream), want)
	}
	prefixes := make([]*DynamicCube, nrec+1)
	for k := 0; k <= nrec; k++ {
		prefixes[k] = prefixCube(t, dims, recs, k)
	}

	workers := runtime.GOMAXPROCS(0)
	run := func(t *testing.T, n int, check func(i int) error) {
		t.Helper()
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					if err := check(i); err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		run(t, len(stream), func(i int) error {
			c, err := NewDynamic(dims)
			if err != nil {
				return err
			}
			st, err := ReplayWALStats(bytes.NewReader(stream[:i]), c)
			if i < walHeaderSize {
				if !errors.Is(err, ErrBadWAL) {
					return fmt.Errorf("truncate %d: err = %v, want ErrBadWAL", i, err)
				}
				return nil
			}
			if err != nil {
				return fmt.Errorf("truncate %d: unexpected error %v", i, err)
			}
			k := (i - walHeaderSize) / recSize
			if st.Applied != uint64(k) {
				return fmt.Errorf("truncate %d: applied %d, want %d", i, st.Applied, k)
			}
			wantTorn := (i-walHeaderSize)%recSize != 0
			if st.Torn != wantTorn {
				return fmt.Errorf("truncate %d: torn = %v, want %v", i, st.Torn, wantTorn)
			}
			if !cubesEqual(c, prefixes[k], dims) {
				return fmt.Errorf("truncate %d: recovered cube is not the %d-record prefix", i, k)
			}
			return nil
		})
	})

	t.Run("byteflip", func(t *testing.T) {
		run(t, len(stream), func(i int) error {
			bad := append([]byte(nil), stream...)
			bad[i] ^= 0xA5
			c, err := NewDynamic(dims)
			if err != nil {
				return err
			}
			st, rerr := ReplayWALStats(bytes.NewReader(bad), c)
			if rerr != nil {
				if !errors.Is(rerr, ErrBadWAL) {
					return fmt.Errorf("flip %d: err = %v, want ErrBadWAL", i, rerr)
				}
				return nil
			}
			// A flip the replay accepted must have been applied exactly
			// as written — with CRC framing this cannot happen, but the
			// invariant we defend is "never wrong data".
			if !cubesEqual(c, prefixes[nrec], dims) || st.Applied != uint64(nrec) {
				return fmt.Errorf("flip %d: corruption silently applied (applied=%d)", i, st.Applied)
			}
			return nil
		})
	})
}
