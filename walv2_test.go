package ddc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"testing"
)

// This file is the WAL fault-injection harness: failing and
// short-writing sinks, torn tails, and the crash/corruption matrix
// (truncate at every offset, flip every byte) that proves recovery is
// always either a clean prefix or a typed error — never silent wrong
// data.

type walRec struct {
	op uint8
	p  []int
	hi []int // range records only (op == walOpRangeAdd)
	v  int64
}

// buildV1Log hand-writes a version-1 (unframed, checksum-free) stream,
// which NewWAL no longer produces, to pin backward-compatible replay.
func buildV1Log(d int, recs []walRec) []byte {
	var b bytes.Buffer
	b.Write(walMagic[:])
	_ = binary.Write(&b, binary.LittleEndian, uint32(d))
	for _, r := range recs {
		b.WriteByte(r.op)
		for _, x := range r.p {
			_ = binary.Write(&b, binary.LittleEndian, int64(x))
		}
		_ = binary.Write(&b, binary.LittleEndian, r.v)
	}
	return b.Bytes()
}

// buildV2Log writes a stream through the real writer.
func buildV2Log(t *testing.T, dims []int, recs []walRec) []byte {
	t.Helper()
	var b bytes.Buffer
	w, err := NewWAL(mustNewDynamic(t, dims), &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		switch r.op {
		case walOpAdd:
			err = w.Add(r.p, r.v)
		case walOpRangeAdd:
			err = w.RangeAdd(r.p, r.hi, r.v)
		default:
			err = w.Set(r.p, r.v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// testRecs is a deterministic mutation stream for the matrix tests.
func testRecs(n int) []walRec {
	recs := make([]walRec, n)
	for i := range recs {
		op := walOpAdd
		if i%3 == 2 {
			op = walOpSet
		}
		recs[i] = walRec{op: op, p: []int{i % 8, (i * 3) % 8}, v: int64(i + 1)}
	}
	return recs
}

// prefixCube applies the first k records to a fresh cube.
func prefixCube(t *testing.T, dims []int, recs []walRec, k int) *DynamicCube {
	t.Helper()
	c := mustNewDynamic(t, dims)
	for _, r := range recs[:k] {
		var err error
		switch r.op {
		case walOpAdd:
			err = c.Add(r.p, r.v)
		case walOpRangeAdd:
			err = c.RangeAdd(r.p, r.hi, r.v)
		default:
			err = c.Set(r.p, r.v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func cubesEqual(a, b *DynamicCube, dims []int) bool {
	if a.Total() != b.Total() {
		return false
	}
	p := make([]int, 2)
	for x := 0; x < dims[0]; x++ {
		for y := 0; y < dims[1]; y++ {
			p[0], p[1] = x, y
			if a.Get(p) != b.Get(p) {
				return false
			}
		}
	}
	return true
}

func TestReplayWALV1Compatible(t *testing.T) {
	dims := []int{8, 8}
	recs := testRecs(9)
	stream := buildV1Log(2, recs)
	c := mustNewDynamic(t, dims)
	st, err := ReplayWALStats(bytes.NewReader(stream), c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 1 || st.Applied != 9 || st.Torn {
		t.Fatalf("stats = %+v, want version 1, 9 applied, no torn tail", st)
	}
	if !cubesEqual(c, prefixCube(t, dims, recs, 9), dims) {
		t.Fatal("v1 replay diverged from direct application")
	}
	// Torn v1 tail still stops cleanly.
	c2 := mustNewDynamic(t, dims)
	st, err = ReplayWALStats(bytes.NewReader(stream[:len(stream)-5]), c2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 8 || !st.Torn {
		t.Fatalf("torn v1 stats = %+v, want 8 applied, torn", st)
	}
}

// faultReader yields its data and then a (non-EOF) error, the signature
// of a failing disk mid-replay.
type faultReader struct {
	data []byte
	err  error
	off  int
}

func (r *faultReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestReplayWALPropagatesIOError is the regression test for the bug
// where any mid-record read failure was misreported as a clean torn
// tail: a real I/O error must surface, for both format versions.
func TestReplayWALPropagatesIOError(t *testing.T) {
	dims := []int{8, 8}
	recs := testRecs(6)
	errDisk := errors.New("simulated disk failure")
	streams := map[string][]byte{
		"v1": buildV1Log(2, recs),
		"v2": buildV2Log(t, dims, recs),
	}
	for name, stream := range streams {
		t.Run(name, func(t *testing.T) {
			// Fail inside the final record's payload.
			r := &faultReader{data: stream[:len(stream)-5], err: errDisk}
			_, err := ReplayWAL(r, mustNewDynamic(t, dims))
			if !errors.Is(err, errDisk) {
				t.Fatalf("error = %v, want the injected disk error", err)
			}
			// Fail at a record boundary: also an I/O error, not EOF.
			r = &faultReader{data: stream, err: errDisk}
			_, err = ReplayWAL(r, mustNewDynamic(t, dims))
			if !errors.Is(err, errDisk) {
				t.Fatalf("boundary error = %v, want the injected disk error", err)
			}
		})
	}
}

// TestWALRejectsMutationBeforeLogging is the regression test for the
// poisoned-log bug: an out-of-bounds mutation must be rejected before
// anything is appended, so the log always replays cleanly.
func TestWALRejectsMutationBeforeLogging(t *testing.T) {
	dims := []int{8, 8}
	var log bytes.Buffer
	w, err := NewWAL(mustNewDynamic(t, dims), &log)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{2, 2}, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{50, 50}, 1); err == nil {
		t.Fatal("out-of-bounds Add accepted")
	}
	if err := w.Set([]int{-1, 0}, 1); err == nil {
		t.Fatal("out-of-bounds Set accepted")
	}
	if w.Records() != 1 {
		t.Fatalf("Records = %d after rejected mutations, want 1", w.Records())
	}
	// The log is not poisoned: later mutations append and the whole
	// stream replays without ErrBadWAL.
	if err := w.Add([]int{3, 3}, 7); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fresh := mustNewDynamic(t, dims)
	applied, err := ReplayWAL(bytes.NewReader(log.Bytes()), fresh)
	if err != nil {
		t.Fatalf("replay of log that saw rejected mutations: %v", err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if fresh.Get([]int{2, 2}) != 5 || fresh.Get([]int{3, 3}) != 7 {
		t.Fatal("replayed state diverged")
	}
}

// failAfterWriter accepts n bytes, then fails every write.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	k := w.n
	w.n = 0
	return k, w.err
}

// shortWriter reports fewer bytes written than asked, with no error —
// bufio must turn that into io.ErrShortWrite rather than lose data.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) {
	if len(p) > 1 {
		return len(p) - 1, nil
	}
	return len(p), nil
}

func TestWALFailingWriterPoisonsLog(t *testing.T) {
	errDisk := errors.New("simulated full disk")
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), &failAfterWriter{n: 20, err: errDisk})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err) // buffered; not yet on "disk"
	}
	if err := w.Flush(); !errors.Is(err, errDisk) {
		t.Fatalf("Flush error = %v, want disk error", err)
	}
	// Poisoned: every later mutation and flush fails fast.
	if err := w.Add([]int{1, 1}, 1); !errors.Is(err, errDisk) {
		t.Fatalf("Add after failure = %v, want disk error", err)
	}
	if err := w.Flush(); !errors.Is(err, errDisk) {
		t.Fatalf("second Flush = %v, want disk error", err)
	}
}

func TestWALShortWriter(t *testing.T) {
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), shortWriter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Flush error = %v, want io.ErrShortWrite", err)
	}
}

// syncBuffer is an in-memory writer with a Sync hook, standing in for
// *os.File in commit-point tests.
type syncBuffer struct {
	bytes.Buffer
	syncs   int
	syncErr error
}

func (s *syncBuffer) Sync() error {
	if s.syncErr != nil {
		return s.syncErr
	}
	s.syncs++
	return nil
}

func TestWALFlushInvokesSync(t *testing.T) {
	var sink syncBuffer
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 0 {
		t.Fatalf("synced %d times before Flush", sink.syncs)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 1 {
		t.Fatalf("syncs = %d after Flush, want 1", sink.syncs)
	}
	if err := w.Flush(); err != nil || sink.syncs != 2 {
		t.Fatalf("second Flush: err=%v syncs=%d, want nil/2", err, sink.syncs)
	}
}

func TestWALSyncFailurePoisonsLog(t *testing.T) {
	errSync := errors.New("simulated fsync failure")
	sink := &syncBuffer{syncErr: errSync}
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); !errors.Is(err, errSync) {
		t.Fatalf("Flush error = %v, want sync error", err)
	}
	if err := w.Add([]int{1, 1}, 1); !errors.Is(err, errSync) {
		t.Fatalf("Add after failed fsync = %v, want sync error", err)
	}
}

// TestWALUnknownOpcodeWithValidChecksum crafts a correctly-framed
// record carrying a bogus opcode: the checksum passes, the opcode check
// must still reject it.
func TestWALUnknownOpcodeWithValidChecksum(t *testing.T) {
	var b bytes.Buffer
	b.Write(walMagic2[:])
	_ = binary.Write(&b, binary.LittleEndian, uint32(2))
	payload := make([]byte, 1+16+8)
	payload[0] = 99
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	b.Write(frame[:])
	b.Write(payload)
	if _, err := ReplayWAL(bytes.NewReader(b.Bytes()), mustNewDynamic(t, []int{8, 8})); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("error = %v, want ErrBadWAL", err)
	}
}

// TestConcurrentWALCrashCorruptionMatrix truncates a valid stream at
// every byte offset and flips every byte, asserting the recovery
// invariant: the outcome is a clean prefix of the acknowledged
// mutations or a typed ErrBadWAL — never silently divergent data. The
// offsets are sharded over goroutines so the -race concurrent tier
// exercises the replay path in parallel.
func TestConcurrentWALCrashCorruptionMatrix(t *testing.T) {
	dims := []int{8, 8}
	nrec := 10
	recs := testRecs(nrec)
	stream := buildV2Log(t, dims, recs)
	recSize := 8 + 1 + 16 + 8 // frame + op + point + value
	if want := walHeaderSize + nrec*recSize; len(stream) != want {
		t.Fatalf("stream is %d bytes, want %d", len(stream), want)
	}
	prefixes := make([]*DynamicCube, nrec+1)
	for k := 0; k <= nrec; k++ {
		prefixes[k] = prefixCube(t, dims, recs, k)
	}

	workers := runtime.GOMAXPROCS(0)
	run := func(t *testing.T, n int, check func(i int) error) {
		t.Helper()
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					if err := check(i); err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		run(t, len(stream), func(i int) error {
			c, err := NewDynamic(dims)
			if err != nil {
				return err
			}
			st, err := ReplayWALStats(bytes.NewReader(stream[:i]), c)
			if i < walHeaderSize {
				if !errors.Is(err, ErrBadWAL) {
					return fmt.Errorf("truncate %d: err = %v, want ErrBadWAL", i, err)
				}
				return nil
			}
			if err != nil {
				return fmt.Errorf("truncate %d: unexpected error %v", i, err)
			}
			k := (i - walHeaderSize) / recSize
			if st.Applied != uint64(k) {
				return fmt.Errorf("truncate %d: applied %d, want %d", i, st.Applied, k)
			}
			wantTorn := (i-walHeaderSize)%recSize != 0
			if st.Torn != wantTorn {
				return fmt.Errorf("truncate %d: torn = %v, want %v", i, st.Torn, wantTorn)
			}
			if !cubesEqual(c, prefixes[k], dims) {
				return fmt.Errorf("truncate %d: recovered cube is not the %d-record prefix", i, k)
			}
			return nil
		})
	})

	t.Run("byteflip", func(t *testing.T) {
		run(t, len(stream), func(i int) error {
			bad := append([]byte(nil), stream...)
			bad[i] ^= 0xA5
			c, err := NewDynamic(dims)
			if err != nil {
				return err
			}
			st, rerr := ReplayWALStats(bytes.NewReader(bad), c)
			if rerr != nil {
				if !errors.Is(rerr, ErrBadWAL) {
					return fmt.Errorf("flip %d: err = %v, want ErrBadWAL", i, rerr)
				}
				return nil
			}
			// A flip the replay accepted must have been applied exactly
			// as written — with CRC framing this cannot happen, but the
			// invariant we defend is "never wrong data".
			if !cubesEqual(c, prefixes[nrec], dims) || st.Applied != uint64(nrec) {
				return fmt.Errorf("flip %d: corruption silently applied (applied=%d)", i, st.Applied)
			}
			return nil
		})
	})
}

// mixedRecs is a deterministic stream interleaving point and range
// records, exercising both record lengths in one log.
func mixedRecs() []walRec {
	return []walRec{
		{op: walOpAdd, p: []int{1, 1}, v: 5},
		{op: walOpRangeAdd, p: []int{0, 0}, hi: []int{3, 3}, v: 2},
		{op: walOpSet, p: []int{2, 6}, v: 9},
		{op: walOpRangeAdd, p: []int{5, 5}, hi: []int{7, 7}, v: -1},
		{op: walOpAdd, p: []int{7, 0}, v: 4},
		{op: walOpRangeAdd, p: []int{0, 0}, hi: []int{7, 7}, v: 3},
	}
}

// recBytes is the on-stream size of one framed v2 record.
func recBytes(r walRec) int {
	if r.op == walOpRangeAdd {
		return 8 + 1 + 16*len(r.p) + 8 // frame + op + two corners + delta
	}
	return 8 + 1 + 8*len(r.p) + 8 // frame + op + point + value
}

// TestWALRangeAddRoundTrip pins the range-record format: one O(1)
// record per box regardless of volume, and replay that reproduces the
// directly-applied cube.
func TestWALRangeAddRoundTrip(t *testing.T) {
	dims := []int{8, 8}
	recs := mixedRecs()
	stream := buildV2Log(t, dims, recs)
	wantLen := walHeaderSize
	for _, r := range recs {
		wantLen += recBytes(r)
	}
	if len(stream) != wantLen {
		t.Fatalf("stream is %d bytes, want %d (range record must be 1+16d+8 framed)", len(stream), wantLen)
	}
	c := mustNewDynamic(t, dims)
	st, err := ReplayWALStats(bytes.NewReader(stream), c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Applied != uint64(len(recs)) || st.Torn {
		t.Fatalf("stats = %+v, want version 2, %d applied", st, len(recs))
	}
	if !cubesEqual(c, prefixCube(t, dims, recs, len(recs)), dims) {
		t.Fatal("replayed cube diverged from direct application")
	}
}

// TestWALRangeAddRejectsBeforeLogging: invalid boxes must be rejected
// before anything is appended, keeping the log replayable.
func TestWALRangeAddRejectsBeforeLogging(t *testing.T) {
	var log bytes.Buffer
	w, err := NewWAL(mustNewDynamic(t, []int{8, 8}), &log)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RangeAdd([]int{1, 1}, []int{2, 2}, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.RangeAdd([]int{0, 0}, []int{9, 9}, 1); err == nil {
		t.Fatal("out-of-bounds box accepted")
	}
	if err := w.RangeAdd([]int{5, 5}, []int{1, 1}, 1); err == nil {
		t.Fatal("inverted box accepted")
	}
	if err := w.RangeAdd([]int{1}, []int{2}, 1); err == nil {
		t.Fatal("wrong-dimensional box accepted")
	}
	if w.Records() != 1 {
		t.Fatalf("Records = %d after rejected boxes, want 1", w.Records())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fresh := mustNewDynamic(t, []int{8, 8})
	if _, err := ReplayWAL(bytes.NewReader(log.Bytes()), fresh); err != nil {
		t.Fatalf("replay after rejected boxes: %v", err)
	}
	if fresh.Total() != 4*3 {
		t.Fatalf("Total = %d, want 12", fresh.Total())
	}
}

// TestWALOpcodeLengthMismatch crafts correctly-checksummed records whose
// opcode disagrees with their length — a point opcode in a range-sized
// record and vice versa. Both must be rejected as ErrBadWAL, not
// misdecoded.
func TestWALOpcodeLengthMismatch(t *testing.T) {
	frame := func(payload []byte) []byte {
		var b bytes.Buffer
		b.Write(walMagic2[:])
		_ = binary.Write(&b, binary.LittleEndian, uint32(2))
		var f [8]byte
		binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(payload, castagnoli))
		b.Write(f[:])
		b.Write(payload)
		return b.Bytes()
	}
	cases := map[string][]byte{
		// walOpAdd inside a range-length payload.
		"point-op-range-len": func() []byte {
			p := make([]byte, 1+16*2+8)
			p[0] = walOpAdd
			return frame(p)
		}(),
		// walOpRangeAdd inside a point-length payload.
		"range-op-point-len": func() []byte {
			p := make([]byte, 1+8*2+8)
			p[0] = walOpRangeAdd
			return frame(p)
		}(),
	}
	for name, stream := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReplayWAL(bytes.NewReader(stream), mustNewDynamic(t, []int{8, 8})); !errors.Is(err, ErrBadWAL) {
				t.Fatalf("error = %v, want ErrBadWAL", err)
			}
		})
	}
}

// TestReplayV1RejectsRangeOpcode: the version-1 format predates range
// records; opcode 3 in a v1 stream is corruption, not a feature.
func TestReplayV1RejectsRangeOpcode(t *testing.T) {
	stream := buildV1Log(2, []walRec{{op: walOpRangeAdd, p: []int{1, 1}, v: 2}})
	if _, err := ReplayWAL(bytes.NewReader(stream), mustNewDynamic(t, []int{8, 8})); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("error = %v, want ErrBadWAL", err)
	}
}

// TestWALRangeCrashCorruptionMatrix runs the truncate-everywhere /
// flip-every-byte matrix over a mixed point+range stream, where records
// have two different sizes: recovery must still be a clean prefix of
// the acknowledged mutations or a typed ErrBadWAL.
func TestWALRangeCrashCorruptionMatrix(t *testing.T) {
	dims := []int{8, 8}
	recs := mixedRecs()
	stream := buildV2Log(t, dims, recs)
	// boundary[k] is the stream offset where record k starts.
	boundary := make([]int, len(recs)+1)
	boundary[0] = walHeaderSize
	for i, r := range recs {
		boundary[i+1] = boundary[i] + recBytes(r)
	}
	if boundary[len(recs)] != len(stream) {
		t.Fatalf("stream is %d bytes, boundaries end at %d", len(stream), boundary[len(recs)])
	}
	prefixes := make([]*DynamicCube, len(recs)+1)
	for k := range prefixes {
		prefixes[k] = prefixCube(t, dims, recs, k)
	}
	// prefixAt maps a truncation offset to (records applied, torn?).
	prefixAt := func(i int) (int, bool) {
		k := 0
		for k < len(recs) && boundary[k+1] <= i {
			k++
		}
		return k, i != boundary[k]
	}

	t.Run("truncate", func(t *testing.T) {
		for i := 0; i <= len(stream); i++ {
			c := mustNewDynamic(t, dims)
			st, err := ReplayWALStats(bytes.NewReader(stream[:i]), c)
			if i < walHeaderSize {
				if !errors.Is(err, ErrBadWAL) {
					t.Fatalf("truncate %d: err = %v, want ErrBadWAL", i, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("truncate %d: unexpected error %v", i, err)
			}
			k, wantTorn := prefixAt(i)
			if st.Applied != uint64(k) || st.Torn != wantTorn {
				t.Fatalf("truncate %d: applied=%d torn=%v, want %d/%v", i, st.Applied, st.Torn, k, wantTorn)
			}
			if !cubesEqual(c, prefixes[k], dims) {
				t.Fatalf("truncate %d: recovered cube is not the %d-record prefix", i, k)
			}
		}
	})

	t.Run("byteflip", func(t *testing.T) {
		for i := 0; i < len(stream); i++ {
			bad := append([]byte(nil), stream...)
			bad[i] ^= 0xA5
			c := mustNewDynamic(t, dims)
			st, err := ReplayWALStats(bytes.NewReader(bad), c)
			if err != nil {
				if !errors.Is(err, ErrBadWAL) {
					t.Fatalf("flip %d: err = %v, want ErrBadWAL", i, err)
				}
				continue
			}
			// Accepted flips must not diverge (CRC framing makes payload
			// flips impossible to accept; a length-field flip may read as
			// a clean torn tail with fewer records applied).
			if st.Applied == uint64(len(recs)) && !cubesEqual(c, prefixes[len(recs)], dims) {
				t.Fatalf("flip %d: corruption silently applied", i)
			}
			if st.Applied < uint64(len(recs)) && !cubesEqual(c, prefixes[st.Applied], dims) {
				t.Fatalf("flip %d: partial replay (%d recs) is not a clean prefix", i, st.Applied)
			}
		}
	})
}
