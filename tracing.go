package ddc

import "ddc/internal/obs"

// Aliases re-export the span-tracing surface (DESIGN.md §12) so
// callers outside the module can drive the traced entry points —
// DynamicCube.RangeSumBatchTrace, ShardedCube.RangeSumBatchTrace —
// whose signatures name these types. They are the internal/obs types
// themselves, not copies: spans recorded through either name land in
// the same slab.
type (
	// SpanContext is one request's trace: a trace ID plus a wait-free
	// fixed-capacity span slab safe for concurrent recording.
	SpanContext = obs.SpanContext
	// SpanID indexes a span inside its SpanContext.
	SpanID = obs.SpanID
	// SpanSnapshot is the exported, JSON-ready form of one span.
	SpanSnapshot = obs.SpanSnapshot
)

const (
	// NoSpan is the parent of root spans.
	NoSpan = obs.NoSpan
	// DroppedSpan identifies spans lost to slab exhaustion; every
	// operation on one is a no-op.
	DroppedSpan = obs.DroppedSpan
)

// NewSpanContext returns a trace with capacity for cap spans and a
// fresh random trace ID.
func NewSpanContext(capacity int) *SpanContext { return obs.NewSpanContext(capacity) }

// GetSpanContext returns a pooled, reset SpanContext; pair with
// PutSpanContext once every recorded span has been consumed.
func GetSpanContext() *SpanContext { return obs.GetSpanContext() }

// PutSpanContext returns a trace to the pool. The caller must not
// touch sc afterwards.
func PutSpanContext(sc *SpanContext) { obs.PutSpanContext(sc) }

// ParseTraceparent extracts the trace ID from a W3C traceparent
// header (version 00); ok is false for malformed or all-zero IDs.
func ParseTraceparent(h string) (id [16]byte, ok bool) { return obs.ParseTraceparent(h) }
